"""``DurablePHTree``: the LSM-flavored persistence layer.

Architecture (DESIGN.md §14):

- every mutation is validated against the live tree, appended to the
  WAL (group-fsync'd), then applied to an in-memory
  :class:`~repro.parallel.sharded.ShardedPHTree` -- the authoritative
  read view -- and tracked in the *pending* delta (puts + deletes not
  yet captured by a segment);
- :meth:`flush` freezes the pending delta per shard into immutable
  on-disk segment files (the verbatim :func:`~repro.core.frozen.freeze`
  stream, ``PHL1`` learned trailer included for learned stores), plus
  one tombstone batch for pending deletes, rotates the WAL, and commits
  everything with one atomic manifest swap;
- :meth:`compact` merges the whole segment chain into one segment per
  shard via the bottom-up sorted bulk loader, erasing tombstones and
  shadowed versions; :meth:`checkpoint` short-cuts both by snapshotting
  the live shards directly (:meth:`ShardedPHTree.freeze_shards`);
- :meth:`open` recovers: verify the manifest, mmap-attach its segments
  zero-copy, repair the WAL's torn tail, replay records newer than the
  manifest's ``wal_seq`` onto the segment contents, bulk-build the live
  tree, and garbage-collect orphan files from crashed flushes.

Durability contract: an operation is durable once its WAL append
returns (fsync'd); a flush/compaction is durable exactly at its
manifest rename.  A crash at *any* byte offset in between recovers to
the newest committed manifest plus the longest valid WAL prefix --
``check/faults.py`` and ``tests/store/test_crash_points.py`` prove it
at seeded offsets through :mod:`repro.store.io`.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.bulk import bulk_load_sorted
from repro.core.frozen import freeze
from repro.core.serialize import NoneValueCodec, U64ValueCodec
from repro.encoding.interleave import interleave
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from repro.parallel.sharded import ShardedPHTree
from repro.store import io as store_io
from repro.store.manifest import (
    MANIFEST_NAME,
    MANIFEST_TMP,
    Manifest,
    SegmentRecord,
    load_manifest,
    write_manifest,
)
from repro.store.segment import (
    Segment,
    segment_name,
    tombstone_name,
    write_segment_file,
    write_tombstone_file,
)
from repro.store.wal import RecordCodec, WalRecord, WriteAheadLog
from repro.store.wal import OP_DEL, OP_PUT, OP_UPD

__all__ = ["DurablePHTree", "StoreError"]

Key = Tuple[int, ...]

_MISSING = object()

_CODECS = {"none": NoneValueCodec, "u64": U64ValueCodec}
_CODEC_NAMES = {NoneValueCodec: "none", U64ValueCodec: "u64"}


class StoreError(RuntimeError):
    """A durable-store protocol violation (bad directory, geometry
    mismatch, use-after-close)."""


def _wal_name(generation: int) -> str:
    return f"wal-{generation:08d}.log"


class DurablePHTree:
    """A crash-safe PH-tree over a directory: WAL + frozen segments.

    Construct with :meth:`open` (``DurablePHTree.open(path, dims=3)``);
    the same call recovers an existing directory, in which case the
    geometry arguments are read back from the manifest and must match
    when given.  The full read API of the live tree is exposed
    (``get``/``query``/``knn``/batches); mutations are durable when
    they return.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        raise TypeError(
            "use DurablePHTree.open(path, ...) to create or recover a store"
        )

    # -- construction / recovery ---------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        *,
        dims: Optional[int] = None,
        width: int = 64,
        shards: int = 4,
        value_codec: Any = None,
        learned: bool = False,
        hc_mode: str = "auto",
        sync: bool = True,
    ) -> "DurablePHTree":
        """Open (creating or recovering) the store at directory ``path``.

        ``dims`` is required when creating; on recovery every geometry
        argument is optional and checked against the manifest.
        ``sync=False`` trades the per-commit fsync away (group commits
        via :meth:`put_all` still write once); crash recovery then
        loses the unsynced suffix but never corrupts.
        """
        self = object.__new__(cls)
        store_io.arm_from_env()
        os.makedirs(path, exist_ok=True)
        manifest = load_manifest(path)
        if manifest is None:
            if dims is None:
                raise StoreError(
                    f"no manifest in {path!r}: pass dims= to create a store"
                )
            codec = value_codec if value_codec is not None else NoneValueCodec
            if codec not in _CODEC_NAMES:
                raise StoreError(
                    "value_codec must be NoneValueCodec or U64ValueCodec "
                    "(the manifest must be able to name it)"
                )
            self._init_common(
                path, dims, width, shards, codec, learned, hc_mode, sync
            )
            self._create_fresh()
        else:
            if dims is not None and dims != manifest.dims:
                raise StoreError(
                    f"dims mismatch: store has {manifest.dims}, got {dims}"
                )
            codec = value_codec
            if codec is None:
                codec = _CODECS["u64" if manifest.value_bits else "none"]
            if codec.bits != manifest.value_bits:
                raise StoreError(
                    f"value codec mismatch: store uses {manifest.value_bits} "
                    f"value bits, codec has {codec.bits}"
                )
            self._init_common(
                path,
                manifest.dims,
                manifest.width,
                manifest.shards,
                codec,
                manifest.learned,
                hc_mode,
                sync,
            )
            self._recover(manifest)
        return self

    def _init_common(
        self, path, dims, width, shards, codec, learned, hc_mode, sync
    ) -> None:
        self._path = os.path.abspath(path)
        self._dims = dims
        self._width = width
        self._n_shards = shards
        self._codec = codec
        self._learned = learned
        self._hc_mode = hc_mode
        self._sync = sync
        self._records = RecordCodec(dims, width, codec.bits)
        self._mutex = threading.RLock()
        self._closed = False
        self._pending_puts: Dict[Key, Any] = {}
        self._pending_dels: set = set()
        self._segments: List[Segment] = []
        self._wal: Optional[WriteAheadLog] = None
        self._manifest: Optional[Manifest] = None
        self._next_seq = 1
        self._recovery_info: Dict[str, int] = {}
        self._live = ShardedPHTree(
            dims, width, shards=shards, value_codec=codec, hc_mode=hc_mode
        )
        self._check_key = self._live._check_key

    def _create_fresh(self) -> None:
        # Protocol: WAL first, manifest second.  A crash in between
        # leaves a WAL with no manifest -- indistinguishable from an
        # empty directory at the next open, which recreates both
        # (create truncates, so stray bytes cannot resurface).
        with store_io.scope("create"):
            wal_file = _wal_name(0)
            self._wal = WriteAheadLog.create(
                os.path.join(self._path, wal_file)
            )
            manifest = Manifest(
                dims=self._dims,
                width=self._width,
                value_bits=self._codec.bits,
                shards=self._n_shards,
                learned=self._learned,
                wal=wal_file,
                wal_seq=0,
                next_file_id=0,
                generation=0,
            )
            write_manifest(self._path, manifest)
        self._manifest = manifest
        self._recovery_info = {
            "created": 1,
            "segments": 0,
            "replayed": 0,
            "torn_bytes": 0,
        }

    def _recover(self, manifest: Manifest) -> None:
        kb = self._records.key_bytes
        segments = []
        try:
            for record in manifest.segments:
                segments.append(
                    Segment.open(
                        self._path, record, self._codec, self._dims, kb
                    )
                )
            wal, payloads, torn = WriteAheadLog.open(
                os.path.join(self._path, manifest.wal)
            )
        except BaseException:
            for seg in segments:
                seg.close()
            raise
        self._segments = segments
        self._wal = wal
        self._manifest = manifest

        state = self._replay_segments()
        records = [self._records.decode(p) for p in payloads]
        last_seq = manifest.wal_seq
        replayed = 0
        for rec in records:
            if rec.seq <= manifest.wal_seq:
                # Flushed before the WAL rotated; already in a segment.
                continue
            if rec.seq <= last_seq:
                raise StoreError(
                    f"WAL sequence regression: {rec.seq} after {last_seq}"
                )
            last_seq = rec.seq
            replayed += 1
            # Replayed tail records are pending again: in the WAL and
            # the live tree, but not yet in any segment.
            self._apply_record(state, rec, pending=True)
        self._next_seq = last_seq + 1

        merged = sorted(
            (interleave(key, self._width), key) for key in state
        )
        items = [(key, state[key]) for _, key in merged]
        zs = [z for z, _ in merged]
        self._rebuild_live(items, zs)
        self._gc_orphans()
        self._recovery_info = {
            "created": 0,
            "segments": len(segments),
            "replayed": replayed,
            "torn_bytes": torn,
            "entries": len(items),
        }
        _recorder.record(
            "store_recovery",
            path=self._path,
            segments=len(segments),
            replayed=replayed,
            torn_bytes=torn,
            entries=len(items),
        )
        _probes.store_recoveries.inc()
        if replayed:
            _probes.store_wal_replayed.inc(replayed)
        if torn:
            _probes.store_torn_bytes.inc(torn)
        _probes.store_segments_live.set(len(segments))

    def _rebuild_live(
        self, items: List[Tuple[Key, Any]], zs: List[int]
    ) -> None:
        """Install z-sorted ``items`` as the live tree via per-shard
        sorted bulk loads (the recovery fast path)."""
        live = ShardedPHTree(
            self._dims,
            self._width,
            shards=self._n_shards,
            value_codec=self._codec,
            hc_mode=self._hc_mode,
        )
        shard_of_z = live.router.shard_of_z
        n = len(items)
        start = 0
        while start < n:
            shard = shard_of_z(zs[start])
            end = start + 1
            while end < n and shard_of_z(zs[end]) == shard:
                end += 1
            built = bulk_load_sorted(
                items[start:end],
                self._dims,
                self._width,
                hc_mode=self._hc_mode,
                validate=False,
                zcodes=zs[start:end],
            )
            locked = live._shards[shard]
            with locked.lock.write():
                locked._tree = built
                live._generations[shard] += 1
            start = end
        self._live = live
        self._check_key = live._check_key

    def _apply_record(
        self, state: Dict[Key, Any], rec: WalRecord, pending: bool = False
    ) -> None:
        """Fold one WAL record into ``state``; with ``pending`` also
        track it in the not-yet-flushed delta."""
        if rec.op == OP_PUT:
            value = self._codec.decode(rec.value)
            state[rec.key] = value
            if pending:
                self._pending_puts[rec.key] = value
                self._pending_dels.discard(rec.key)
        elif rec.op == OP_DEL:
            state.pop(rec.key, None)
            if pending:
                self._pending_puts.pop(rec.key, None)
                self._pending_dels.add(rec.key)
        elif rec.op == OP_UPD:
            if rec.key in state:
                value = state.pop(rec.key)
                state[rec.new_key] = value
                if pending:
                    self._pending_puts.pop(rec.key, None)
                    self._pending_dels.add(rec.key)
                    self._pending_puts[rec.new_key] = value
                    self._pending_dels.discard(rec.new_key)
        else:  # pragma: no cover - decode rejects unknown ops
            raise StoreError(f"unknown WAL op {rec.op}")

    def _replay_segments(self) -> Dict[Key, Any]:
        """Fold the segment chain (oldest first) into one mapping."""
        state: Dict[Key, Any] = {}
        for seg in self._segments:
            for key in seg.tombstones:
                state.pop(key, None)
            if seg.frozen is not None:
                for key, value in seg.frozen.items():
                    state[key] = value
        return state

    def _gc_orphans(self) -> None:
        """Unlink data files not referenced by the committed manifest --
        the debris of a flush or compaction that died pre-commit."""
        assert self._manifest is not None
        live = {self._manifest.wal, MANIFEST_NAME}
        for seg in self._segments:
            live.update(seg.files())
        removed = []
        for name in os.listdir(self._path):
            if name in live or name == MANIFEST_TMP:
                if name == MANIFEST_TMP:
                    os.unlink(os.path.join(self._path, name))
                continue
            if name.startswith(("seg-", "wal-")):
                os.unlink(os.path.join(self._path, name))
                removed.append(name)
        if removed:
            _recorder.record(
                "store_gc", path=self._path, removed=sorted(removed)
            )

    # -- geometry / introspection --------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def dims(self) -> int:
        return self._dims

    @property
    def width(self) -> int:
        return self._width

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def learned(self) -> bool:
        return self._learned

    @property
    def live(self) -> ShardedPHTree:
        """The authoritative in-memory read view."""
        return self._live

    @property
    def manifest(self) -> Optional[Manifest]:
        return self._manifest

    @property
    def segments(self) -> List[Segment]:
        return list(self._segments)

    @property
    def wal_bytes(self) -> int:
        return self._wal.size if self._wal is not None else 0

    @property
    def pending_ops(self) -> int:
        return len(self._pending_puts) + len(self._pending_dels)

    @property
    def recovery_info(self) -> Dict[str, int]:
        """What the last :meth:`open` did: ``created``, ``segments``
        attached, WAL records ``replayed``, ``torn_bytes`` discarded."""
        return dict(self._recovery_info)

    def stats(self) -> Dict[str, Any]:
        with self._mutex:
            self._ensure_open()
            assert self._manifest is not None
            return {
                "path": self._path,
                "dims": self._dims,
                "width": self._width,
                "shards": self._n_shards,
                "learned": self._learned,
                "entries": len(self._live),
                "generation": self._manifest.generation,
                "segments": len(self._segments),
                "segment_bytes": sum(s.nbytes for s in self._segments),
                "wal_bytes": self.wal_bytes,
                "wal_seq": self._next_seq - 1,
                "pending_puts": len(self._pending_puts),
                "pending_dels": len(self._pending_dels),
                "recovery": self.recovery_info,
            }

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    # -- mutations ------------------------------------------------------------

    def put(self, key: Sequence[int], value: Any = None) -> Any:
        """Insert/overwrite; durable on return.  Returns the previous
        value (``None`` if absent), like the live tree."""
        with self._mutex:
            self._ensure_open()
            key = self._check_key(key)
            raw = self._codec.encode(value)
            payload = self._records.encode_put(self._next_seq, key, raw)
            with store_io.scope("wal"):
                appended = self._wal.append([payload], sync=self._sync)
            self._next_seq += 1
            previous = self._live.put(key, value)
            self._pending_puts[key] = value
            self._pending_dels.discard(key)
            if _rt.enabled:
                _probes.store_wal_appends.inc()
                _probes.store_wal_bytes.inc(appended)
            return previous

    def put_all(
        self, entries: Sequence[Tuple[Sequence[int], Any]]
    ) -> None:
        """Group commit: all entries framed into one WAL write and made
        durable with a single fsync."""
        with self._mutex:
            self._ensure_open()
            payloads = []
            checked = []
            seq = self._next_seq
            for key, value in entries:
                key = self._check_key(key)
                raw = self._codec.encode(value)
                payloads.append(self._records.encode_put(seq, key, raw))
                checked.append((key, value))
                seq += 1
            if not payloads:
                return
            with store_io.scope("wal"):
                appended = self._wal.append(payloads, sync=self._sync)
            self._next_seq = seq
            self._live.put_all(checked)
            for key, value in checked:
                self._pending_puts[key] = value
                self._pending_dels.discard(key)
            if _rt.enabled:
                _probes.store_wal_appends.inc()
                _probes.store_wal_bytes.inc(appended)

    def remove(self, key: Sequence[int], default: Any = _MISSING) -> Any:
        """Remove ``key``; raises ``KeyError`` (no WAL traffic) when
        absent unless ``default`` is given."""
        with self._mutex:
            self._ensure_open()
            key = self._check_key(key)
            if not self._live.contains(key):
                if default is _MISSING:
                    raise KeyError(key)
                return default
            payload = self._records.encode_del(self._next_seq, key)
            with store_io.scope("wal"):
                appended = self._wal.append([payload], sync=self._sync)
            self._next_seq += 1
            value = self._live.remove(key)
            self._pending_puts.pop(key, None)
            self._pending_dels.add(key)
            if _rt.enabled:
                _probes.store_wal_appends.inc()
                _probes.store_wal_bytes.inc(appended)
            return value

    def update_key(
        self, old_key: Sequence[int], new_key: Sequence[int]
    ) -> None:
        """Move an entry's key (paper §3.6), with the live tree's exact
        error contract; durable on return."""
        with self._mutex:
            self._ensure_open()
            old_key = self._check_key(old_key)
            new_key = self._check_key(new_key)
            if self._live.contains(new_key):
                if old_key == new_key:
                    return
                raise ValueError(
                    f"target key already present: {new_key}"
                )
            if not self._live.contains(old_key):
                raise KeyError(old_key)
            payload = self._records.encode_update(
                self._next_seq, old_key, new_key
            )
            with store_io.scope("wal"):
                appended = self._wal.append([payload], sync=self._sync)
            self._next_seq += 1
            self._live.update_key(old_key, new_key)
            value = self._pending_puts.pop(old_key, _MISSING)
            if value is _MISSING:
                value = self._live.get(new_key)
            self._pending_dels.add(old_key)
            self._pending_dels.discard(new_key)
            self._pending_puts[new_key] = value
            if _rt.enabled:
                _probes.store_wal_appends.inc()
                _probes.store_wal_bytes.inc(appended)

    def clear(self) -> None:
        """Drop everything: live tree, pending delta, segment chain."""
        with self._mutex:
            self._ensure_open()
            self._live.clear()
            self._pending_puts.clear()
            self._pending_dels.clear()
            with store_io.scope("flush"):
                self._commit(segments=[], rotate_wal=True)

    # -- flush / compaction ----------------------------------------------------

    def _freeze_items(
        self, items: List[Tuple[Key, Any]], zs: List[int]
    ) -> bytes:
        tree = bulk_load_sorted(
            items,
            self._dims,
            self._width,
            hc_mode=self._hc_mode,
            validate=False,
            zcodes=zs,
        )
        return freeze(tree, self._codec, learned=self._learned)

    def _split_sorted(
        self, mapping: Dict[Key, Any]
    ) -> List[Tuple[int, List[Tuple[Key, Any]], List[int]]]:
        """z-sort ``mapping`` and cut it into contiguous shard runs."""
        merged = sorted((interleave(key, self._width), key) for key in mapping)
        shard_of_z = self._live.router.shard_of_z
        runs: List[Tuple[int, List[Tuple[Key, Any]], List[int]]] = []
        n = len(merged)
        start = 0
        while start < n:
            shard = shard_of_z(merged[start][0])
            end = start + 1
            while end < n and shard_of_z(merged[end][0]) == shard:
                end += 1
            chunk = merged[start:end]
            runs.append(
                (
                    shard,
                    [(key, mapping[key]) for _, key in chunk],
                    [z for z, _ in chunk],
                )
            )
            start = end
        return runs

    def _commit(
        self, segments: List[SegmentRecord], rotate_wal: bool
    ) -> None:
        """Swap in a manifest naming ``segments`` as the full chain,
        optionally rotating the WAL; attaches the new chain and clears
        the pending delta.  Caller holds the mutex and an io scope."""
        assert self._manifest is not None and self._wal is not None
        old_wal_path = self._wal.path
        old_segments = self._segments
        generation = self._manifest.generation + 1
        if rotate_wal:
            wal_file = _wal_name(generation)
            new_wal = WriteAheadLog.create(
                os.path.join(self._path, wal_file)
            )
        else:
            wal_file = self._manifest.wal
            new_wal = self._wal
        manifest = Manifest(
            dims=self._dims,
            width=self._width,
            value_bits=self._codec.bits,
            shards=self._n_shards,
            learned=self._learned,
            wal=wal_file,
            wal_seq=self._next_seq - 1,
            next_file_id=self._manifest.next_file_id,
            generation=generation,
            segments=segments,
        )
        write_manifest(self._path, manifest)
        # -- committed: everything below is cleanup of the old chain.
        kb = self._records.key_bytes
        attached = [
            Segment.open(self._path, rec, self._codec, self._dims, kb)
            for rec in segments
        ]
        self._manifest = manifest
        self._segments = attached
        self._pending_puts.clear()
        self._pending_dels.clear()
        if rotate_wal and new_wal is not self._wal:
            self._wal.close()
            self._wal = new_wal
            store_io.unlink(old_wal_path)
        stale = {
            name
            for seg in old_segments
            for name in seg.files()
        } - {name for seg in attached for name in seg.files()}
        for seg in old_segments:
            if seg not in attached:
                seg.close()
        for name in sorted(stale):
            store_io.unlink(os.path.join(self._path, name))
        _probes.store_segments_live.set(len(attached))

    def flush(self) -> int:
        """Freeze the pending delta to new segment files and commit.

        Returns the number of chain records written (0 when clean).
        Durable at the manifest swap; a crash anywhere inside recovers
        the exact same contents from the previous manifest + WAL.
        """
        with self._mutex:
            self._ensure_open()
            if not self._pending_puts and not self._pending_dels:
                return 0
            assert self._manifest is not None
            with store_io.scope("flush"):
                file_id = self._manifest.next_file_id
                records: List[SegmentRecord] = list(
                    self._manifest.segments
                )
                written = 0
                if self._pending_dels:
                    name = tombstone_name(file_id)
                    file_id += 1
                    write_tombstone_file(
                        os.path.join(self._path, name),
                        sorted(self._pending_dels),
                        self._dims,
                        self._records.key_bytes,
                    )
                    records.append(
                        SegmentRecord(
                            tombstones=name,
                            removals=len(self._pending_dels),
                        )
                    )
                    written += 1
                for shard, items, zs in self._split_sorted(
                    self._pending_puts
                ):
                    name = segment_name(file_id)
                    file_id += 1
                    write_segment_file(
                        os.path.join(self._path, name),
                        self._freeze_items(items, zs),
                    )
                    records.append(
                        SegmentRecord(
                            file=name, shard=shard, entries=len(items)
                        )
                    )
                    written += 1
                self._manifest.next_file_id = file_id
                self._commit(records, rotate_wal=True)
            _recorder.record(
                "store_flush",
                path=self._path,
                written=written,
                chain=len(records),
                wal_seq=self._next_seq - 1,
            )
            _probes.store_flushes.inc()
            return written

    def compact(self) -> int:
        """Flush, then merge the whole chain into at most one segment
        per shard (tombstones and shadowed versions erased).

        Returns the number of merged segments committed.
        """
        with self._mutex:
            self._ensure_open()
            self.flush()
            if not self._segments:
                return 0
            with store_io.scope("compact"):
                state = self._replay_segments()
                records: List[SegmentRecord] = []
                file_id = self._manifest.next_file_id
                for shard, items, zs in self._split_sorted(state):
                    name = segment_name(file_id)
                    file_id += 1
                    write_segment_file(
                        os.path.join(self._path, name),
                        self._freeze_items(items, zs),
                    )
                    records.append(
                        SegmentRecord(
                            file=name, shard=shard, entries=len(items)
                        )
                    )
                self._manifest.next_file_id = file_id
                self._commit(records, rotate_wal=False)
            _recorder.record(
                "store_compaction",
                path=self._path,
                segments=len(records),
                entries=len(state),
            )
            _probes.store_compactions.inc()
            return len(records)

    def checkpoint(self) -> int:
        """Snapshot the live shards directly to a fresh one-segment-per-
        shard chain (flush + compact in one pass, no chain replay).

        The fast path for bulk ingest: the per-shard streams come from
        :meth:`ShardedPHTree.freeze_shards` under shard read locks.
        """
        with self._mutex:
            self._ensure_open()
            blobs = self._live.freeze_shards(
                self._codec, learned=self._learned
            )
            sizes = self._live.shard_sizes()
            with store_io.scope("flush"):
                records: List[SegmentRecord] = []
                file_id = self._manifest.next_file_id
                for shard, blob in enumerate(blobs):
                    if not sizes.get(shard):
                        continue
                    name = segment_name(file_id)
                    file_id += 1
                    write_segment_file(
                        os.path.join(self._path, name), blob
                    )
                    records.append(
                        SegmentRecord(
                            file=name,
                            shard=shard,
                            entries=sizes[shard],
                        )
                    )
                self._manifest.next_file_id = file_id
                self._commit(records, rotate_wal=True)
            _recorder.record(
                "store_checkpoint",
                path=self._path,
                segments=len(records),
                entries=len(self._live),
            )
            _probes.store_flushes.inc()
            return len(records)

    # -- reads (delegated to the live tree) ------------------------------------

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        return self._live.get(key, default)

    def contains(self, key: Sequence[int]) -> bool:
        return self._live.contains(key)

    def __contains__(self, key: Sequence[int]) -> bool:
        return self._live.contains(key)

    def get_many(
        self, keys: Sequence[Sequence[int]], default: Any = None
    ) -> List[Any]:
        return self._live.get_many(keys, default)

    def contains_many(self, keys: Sequence[Sequence[int]]) -> List[bool]:
        return [self._live.contains(key) for key in keys]

    def query(
        self, lower: Sequence[int], upper: Sequence[int]
    ) -> List[Tuple[Key, Any]]:
        return self._live.query(lower, upper)

    def query_many(
        self, boxes: Sequence[Tuple[Sequence[int], Sequence[int]]]
    ) -> List[List[Tuple[Key, Any]]]:
        return self._live.query_many(boxes)

    def count(self, lower: Sequence[int], upper: Sequence[int]) -> int:
        return self._live.count(lower, upper)

    def knn(self, key: Sequence[int], n: int) -> List[Tuple[Key, Any]]:
        return self._live.knn(key, n)

    def items(self) -> Iterator[Tuple[Key, Any]]:
        return self._live.items()

    def keys(self) -> Iterator[Key]:
        return self._live.keys()

    def __iter__(self) -> Iterator[Key]:
        return self._live.keys()

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """fsync and close the WAL, unmap segments, shut the live tree.
        The store reopens (recovering nothing) with :meth:`open`."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None and not self._wal.closed:
                try:
                    with store_io.scope("wal"):
                        self._wal.sync()
                except store_io.SimulatedCrash:
                    # The harness simulated our death mid-phase: the
                    # "process" performs no further I/O; dropping the
                    # fd without the sync is exactly what SIGKILL does.
                    pass
                self._wal.close()
            for seg in self._segments:
                seg.close()
            self._segments = []
            self._live.close()

    def __enter__(self) -> "DurablePHTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass
