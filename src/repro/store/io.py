"""Crash-injectable I/O for the durable store.

Every byte the store writes to disk flows through this module, which
buys the crash-recovery harness its headline property: a *faithful*,
deterministic model of ``kill -9`` at an arbitrary byte offset.

The model: when a process dies from SIGKILL, every byte already handed
to the kernel via ``os.write`` survives (it is in the page cache; the
machine did not lose power), every byte not yet written is gone, and
the write the process died inside may be *torn* -- a prefix landed.
Metadata operations (``rename``, ``unlink``, ``fsync``, file creation)
are atomic units that either happened or did not.

:func:`arm` plants a crash ``budget`` charged inside a named *scope*
(``"wal"``, ``"flush"``, ``"compact"`` -- the store tags its phases via
:func:`scope`): each data write charges its byte length, each metadata
op charges one unit.  The op that exhausts the budget performs only
the affordable prefix (data writes really write that prefix -- a torn
frame on disk) and then *crashes*:

- ``action="raise"`` raises :class:`SimulatedCrash` (a
  ``BaseException``: nothing accidentally swallows it), after which
  **every** store I/O call raises until :func:`disarm` -- the process
  is "dead", so abandoned engine objects cannot keep mutating disk
  through ``finally`` blocks the real SIGKILL would never run;
- ``action="kill"`` delivers a real ``SIGKILL`` to the current
  process, for subprocess drills (:mod:`repro.store.drill`).

:func:`measure` runs a workload without crashing and reports the units
each scope charged, so a drill can seed a crash offset *uniformly over
the real I/O volume* of the phase it targets.  Arming can also come
from the environment (``REPRO_STORE_CRASH="flush:1234:kill"``) so a
driver subprocess needs no plumbing.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import recorder as _recorder

__all__ = [
    "SimulatedCrash",
    "arm",
    "arm_from_env",
    "crashed",
    "disarm",
    "fsync",
    "fsync_dir",
    "measure",
    "open_fresh",
    "replace",
    "scope",
    "unlink",
    "write",
]

#: Environment variable a drill subprocess is armed through:
#: ``scope:budget`` or ``scope:budget:kill``.
CRASH_ENV = "REPRO_STORE_CRASH"


class SimulatedCrash(BaseException):
    """The armed crash point fired.

    A ``BaseException`` on purpose: the store's (and its callers')
    ``except Exception`` handlers must not swallow a simulated death --
    the test harness alone catches it, abandons the engine object, and
    reopens the directory the way a fresh process would.
    """


class _State:
    __slots__ = (
        "armed_scope",
        "budget",
        "action",
        "crashed",
        "current",
        "totals",
    )

    def __init__(self) -> None:
        self.armed_scope: Optional[str] = None
        self.budget = 0
        self.action = "raise"
        self.crashed = False
        #: The store phase currently executing (via :func:`scope`).
        self.current: Optional[str] = None
        #: Per-scope charged units, accumulated while a
        #: :func:`measure` context is active (else ``None``).
        self.totals: Optional[Dict[str, int]] = None


_state = _State()


def arm(scope_name: str, budget: int, action: str = "raise") -> None:
    """Arm a crash after ``budget`` charged units inside ``scope_name``.

    ``budget=0`` crashes on the scope's very first I/O op.  A scope of
    ``"any"`` matches every store phase.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if action not in ("raise", "kill"):
        raise ValueError(f"action must be 'raise' or 'kill', got {action!r}")
    _state.armed_scope = scope_name
    _state.budget = budget
    _state.action = action
    _state.crashed = False


def disarm() -> None:
    """Remove any armed crash point and clear the crashed latch."""
    _state.armed_scope = None
    _state.crashed = False


def crashed() -> bool:
    """Whether the armed crash point has fired.  Drills check this
    rather than relying on :class:`SimulatedCrash` escaping: a crash
    landing in an already-redundant final fsync (e.g. ``close()``
    after per-op syncs) is absorbed by process-death semantics."""
    return _state.crashed


def arm_from_env() -> bool:
    """Arm from ``REPRO_STORE_CRASH`` (``scope:budget[:action]``);
    returns whether anything was armed.  No-op when already armed, so a
    test's programmatic :func:`arm` wins over a leaked variable."""
    spec = os.environ.get(CRASH_ENV)
    if not spec or _state.armed_scope is not None:
        return False
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"{CRASH_ENV} must be 'scope:budget[:action]', got {spec!r}"
        )
    arm(parts[0], int(parts[1]), parts[2] if len(parts) == 3 else "raise")
    return True


@contextmanager
def scope(name: str) -> Iterator[None]:
    """Tag the store phase the enclosed I/O belongs to."""
    previous = _state.current
    _state.current = name
    try:
        yield
    finally:
        _state.current = previous


@contextmanager
def measure() -> Iterator[Dict[str, int]]:
    """Accumulate (instead of crash-count) the units each scope
    charges; yields the live per-scope dict."""
    previous = _state.totals
    totals: Dict[str, int] = {}
    _state.totals = totals
    try:
        yield totals
    finally:
        _state.totals = previous


def _crash() -> None:
    _state.crashed = True
    _recorder.record(
        "fault_injected",
        fault="simulated_crash",
        scope=_state.current or "?",
        action=_state.action,
    )
    if _state.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise SimulatedCrash(
        f"injected crash in scope {_state.current!r}"
    )


def _charge(units: int) -> int:
    """Charge ``units`` against the armed budget; returns how many
    units the caller may still perform (data writes use this to land a
    torn prefix) and crashes when the budget is exhausted.  A charge of
    the full amount returns ``units``."""
    current = _state.current
    if _state.totals is not None and current is not None:
        _state.totals[current] = _state.totals.get(current, 0) + units
    if _state.armed_scope is None:
        return units
    if _state.crashed:
        # The process is dead: nothing performs I/O any more.
        raise SimulatedCrash("process already crashed")
    if current is None or (
        _state.armed_scope != "any" and _state.armed_scope != current
    ):
        return units
    if units <= _state.budget:
        _state.budget -= units
        return units
    affordable = _state.budget
    _state.budget = 0
    return affordable


def write(fd: int, data: bytes) -> int:
    """``os.write`` with byte-granular crash accounting: a crash point
    landing inside ``data`` writes exactly the affordable prefix (a
    torn write) and then dies."""
    n = len(data)
    affordable = _charge(n)
    view = memoryview(data)[:affordable]
    while view:
        written = os.write(fd, view)
        view = view[written:]
    if affordable < n:
        _crash()
    return n


def fsync(fd: int) -> None:
    """``os.fsync`` as one metadata unit."""
    if _charge(1) < 1:
        _crash()
    os.fsync(fd)


def open_fresh(path: str) -> int:
    """Create-or-truncate ``path`` for writing (one metadata unit)."""
    if _charge(1) < 1:
        _crash()
    return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)


def replace(src: str, dst: str) -> None:
    """Atomic ``os.replace`` as one metadata unit (it either happened
    or it did not -- exactly rename's crash contract on POSIX)."""
    if _charge(1) < 1:
        _crash()
    os.replace(src, dst)


def unlink(path: str) -> None:
    """``os.unlink`` as one metadata unit (missing files ignored)."""
    if _charge(1) < 1:
        _crash()
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creations inside it are durable
    (one metadata unit; silently skipped where unsupported)."""
    if _charge(1) < 1:
        _crash()
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)
