"""The store manifest: the single commit point of the durable engine.

``MANIFEST.json`` names everything that is live -- the segment chain
(in application order), the active WAL file, and the last sequence
number already captured by segments -- plus the tree geometry needed
to reopen without arguments.  A CRC over the canonical body rejects
half-written or bit-flipped manifests.

Updates follow the classic atomic-swap protocol: write the new body to
``MANIFEST.tmp``, fsync it, ``rename(2)`` over ``MANIFEST.json``, then
fsync the directory.  A crash at any byte offset leaves either the old
or the new manifest fully intact, never a blend; every flush and
compaction commits (or vanishes) at exactly the rename.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.store import io as store_io

__all__ = ["Manifest", "SegmentRecord", "load_manifest", "write_manifest"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_TMP = "MANIFEST.tmp"
FORMAT = "repro-store-1"


@dataclass
class SegmentRecord:
    """One entry in the segment chain.

    Either a frozen-tree segment (``file`` set, the verbatim
    ``freeze()`` stream for one shard) or a tombstone batch
    (``tombstones`` set, keys deleted from everything older in the
    chain).  Replay order is chain order, oldest first.
    """

    file: Optional[str] = None
    tombstones: Optional[str] = None
    shard: int = -1
    entries: int = 0
    removals: int = 0

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "tombstones": self.tombstones,
            "shard": self.shard,
            "entries": self.entries,
            "removals": self.removals,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "SegmentRecord":
        return cls(
            file=obj.get("file"),
            tombstones=obj.get("tombstones"),
            shard=int(obj.get("shard", -1)),
            entries=int(obj.get("entries", 0)),
            removals=int(obj.get("removals", 0)),
        )


@dataclass
class Manifest:
    dims: int
    width: int
    value_bits: int
    shards: int
    learned: bool
    wal: str
    #: Highest mutation sequence number already folded into segments;
    #: recovery replays only WAL records with ``seq`` greater than it.
    wal_seq: int = 0
    next_file_id: int = 0
    generation: int = 0
    segments: List[SegmentRecord] = field(default_factory=list)

    def _body(self) -> dict:
        return {
            "format": FORMAT,
            "dims": self.dims,
            "width": self.width,
            "value_bits": self.value_bits,
            "shards": self.shards,
            "learned": self.learned,
            "wal": self.wal,
            "wal_seq": self.wal_seq,
            "next_file_id": self.next_file_id,
            "generation": self.generation,
            "segments": [s.to_json() for s in self.segments],
        }

    def to_bytes(self) -> bytes:
        body = self._body()
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = zlib.crc32(canonical.encode("utf-8"))
        return (json.dumps(body, indent=1, sort_keys=True) + "\n").encode(
            "utf-8"
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        obj = json.loads(data.decode("utf-8"))
        crc = obj.pop("crc", None)
        canonical = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        if crc != zlib.crc32(canonical.encode("utf-8")):
            raise ValueError("manifest CRC mismatch")
        if obj.get("format") != FORMAT:
            raise ValueError(f"unknown manifest format {obj.get('format')!r}")
        return cls(
            dims=int(obj["dims"]),
            width=int(obj["width"]),
            value_bits=int(obj["value_bits"]),
            shards=int(obj["shards"]),
            learned=bool(obj["learned"]),
            wal=obj["wal"],
            wal_seq=int(obj["wal_seq"]),
            next_file_id=int(obj["next_file_id"]),
            generation=int(obj["generation"]),
            segments=[
                SegmentRecord.from_json(s) for s in obj.get("segments", [])
            ],
        )


def write_manifest(directory: str, manifest: Manifest) -> None:
    """Commit ``manifest`` via the tmp-write / fsync / rename / dir-fsync
    protocol.  This is the only mutation of ``MANIFEST.json``."""
    tmp = os.path.join(directory, MANIFEST_TMP)
    fd = store_io.open_fresh(tmp)
    try:
        store_io.write(fd, manifest.to_bytes())
        store_io.fsync(fd)
    finally:
        os.close(fd)
    store_io.replace(tmp, os.path.join(directory, MANIFEST_NAME))
    store_io.fsync_dir(directory)


def load_manifest(directory: str) -> Optional[Manifest]:
    """Read and verify the current manifest; ``None`` when the
    directory has never committed one (fresh store)."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return None
    return Manifest.from_bytes(data)
