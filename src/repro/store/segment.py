"""On-disk frozen segments: the ``freeze()`` byte stream, verbatim.

A segment file (``seg-NNNNNNNN.phs``) is exactly the output of
:func:`repro.core.frozen.freeze` for one shard's contents -- header,
packed node stream, and (when the store is learned) the zero-copy
``PHL1`` trailer.  Nothing is added or wrapped: opening a segment is
``mmap`` + :class:`~repro.core.frozen.FrozenPHTree` buffer-attach, so
a query against a segment that has never been paged in reads only the
pages its descent touches, and the learned trailer works straight off
the mapping.

Deletes ride in tombstone companions (``seg-NNNNNNNN.tomb``): a CRC'd
batch of fixed-width keys that erase matching entries from every
*older* record in the manifest chain.

Segment files are immutable once written: they are created under
their final name (write + fsync, no rename needed) and only become
live when a manifest referencing them is swapped in.  A crash between
the two leaves an orphan that recovery garbage-collects.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.frozen import FrozenPHTree
from repro.store import io as store_io
from repro.store.manifest import SegmentRecord

__all__ = [
    "Segment",
    "load_tombstones",
    "segment_name",
    "tombstone_name",
    "write_segment_file",
    "write_tombstone_file",
]

_TOMB_MAGIC = b"PHX1"
_TOMB_HEADER = struct.Struct("<4sIQ")


def segment_name(file_id: int) -> str:
    return f"seg-{file_id:08d}.phs"


def tombstone_name(file_id: int) -> str:
    return f"seg-{file_id:08d}.tomb"


def write_segment_file(path: str, blob: bytes) -> None:
    """Persist one frozen stream under its final, immutable name."""
    fd = store_io.open_fresh(path)
    try:
        store_io.write(fd, blob)
        store_io.fsync(fd)
    finally:
        os.close(fd)


def write_tombstone_file(
    path: str, keys: Sequence[Tuple[int, ...]], dims: int, key_bytes: int
) -> None:
    body = b"".join(
        int(v).to_bytes(key_bytes, "little") for key in keys for v in key
    )
    blob = _TOMB_HEADER.pack(_TOMB_MAGIC, zlib.crc32(body), len(keys)) + body
    fd = store_io.open_fresh(path)
    try:
        store_io.write(fd, blob)
        store_io.fsync(fd)
    finally:
        os.close(fd)


def load_tombstones(
    path: str, dims: int, key_bytes: int
) -> List[Tuple[int, ...]]:
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < _TOMB_HEADER.size:
        raise ValueError(f"truncated tombstone file {path!r}")
    magic, crc, count = _TOMB_HEADER.unpack_from(data, 0)
    if magic != _TOMB_MAGIC:
        raise ValueError(f"bad tombstone magic in {path!r}")
    body = data[_TOMB_HEADER.size :]
    if zlib.crc32(body) != crc:
        raise ValueError(f"tombstone CRC mismatch in {path!r}")
    stride = dims * key_bytes
    if len(body) != count * stride:
        raise ValueError(f"tombstone size mismatch in {path!r}")
    keys = []
    for i in range(count):
        base = i * stride
        keys.append(
            tuple(
                int.from_bytes(
                    body[base + j * key_bytes : base + (j + 1) * key_bytes],
                    "little",
                )
                for j in range(dims)
            )
        )
    return keys


class Segment:
    """A live, mmap-attached manifest record.

    Frozen segments expose ``frozen`` (a zero-copy
    :class:`FrozenPHTree` over the mapping); tombstone records expose
    ``tombstones`` (the decoded key batch).
    """

    __slots__ = ("record", "frozen", "tombstones", "_mmap", "_file")

    def __init__(
        self,
        record: SegmentRecord,
        frozen: Optional[FrozenPHTree],
        tombstones: List[Tuple[int, ...]],
        mapped: Optional[mmap.mmap],
        file_obj,
    ) -> None:
        self.record = record
        self.frozen = frozen
        self.tombstones = tombstones
        self._mmap = mapped
        self._file = file_obj

    @classmethod
    def open(
        cls,
        directory: str,
        record: SegmentRecord,
        value_codec: Any,
        dims: int,
        key_bytes: int,
    ) -> "Segment":
        if record.tombstones is not None:
            keys = load_tombstones(
                os.path.join(directory, record.tombstones), dims, key_bytes
            )
            return cls(record, None, keys, None, None)
        assert record.file is not None
        f = open(os.path.join(directory, record.file), "rb")
        try:
            mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            f.close()
            raise
        try:
            frozen = FrozenPHTree(mapped, value_codec)
        except BaseException:
            mapped.close()
            f.close()
            raise
        return cls(record, frozen, [], mapped, f)

    @property
    def nbytes(self) -> int:
        return self.frozen.nbytes if self.frozen is not None else 0

    def files(self) -> List[str]:
        out = []
        if self.record.file:
            out.append(self.record.file)
        if self.record.tombstones:
            out.append(self.record.tombstones)
        return out

    def close(self) -> None:
        # Drop the FrozenPHTree's memoryviews before the mmap: an
        # exported view keeps a closed mmap's buffer pinned and raises.
        self.frozen = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
