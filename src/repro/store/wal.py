"""Append-only write-ahead log with CRC framing and torn-tail repair.

Layout: a WAL file is a plain concatenation of frames, each

    [length: u32 LE] [crc32(payload): u32 LE] [payload: length bytes]

Appends are *group-committed*: a batch of payloads is framed into one
buffer, handed to the kernel in a single :func:`repro.store.io.write`,
and made durable with a single fsync.  Recovery scans frames from the
start and keeps the longest valid prefix: the scan stops at the first
frame whose header overruns the file, whose length is implausible, or
whose CRC does not match -- exactly what a crash mid-append (a torn
frame) or a bit-flip in the tail leaves behind.  The invalid tail is
truncated away so the next append extends a clean prefix.

Payloads belong to the engine; this module also hosts their codec so
the drill driver and tests can speak it: a mutation record is

    [seq: u64 LE] [op: u8] [body]

with ``op`` one of PUT (key + value), DEL (key), UPD (old key + new
key); coordinates and values are fixed-width little-endian integers
sized from the tree's bit width and value codec.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.store import io as store_io

__all__ = [
    "OP_DEL",
    "OP_PUT",
    "OP_UPD",
    "RecordCodec",
    "WalRecord",
    "WriteAheadLog",
    "scan_frames",
]

_FRAME = struct.Struct("<II")
_FRAME_SIZE = _FRAME.size

#: Defensive ceiling on a single payload; a frame longer than this is
#: treated as tail corruption, not a record.
MAX_PAYLOAD = 1 << 28

OP_PUT = 1
OP_DEL = 2
OP_UPD = 3

_SEQ_OP = struct.Struct("<QB")


def frame(payload: bytes) -> bytes:
    """Wrap one payload in its length+CRC header."""
    if not payload:
        raise ValueError("empty WAL payload")
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(f"WAL payload too large: {len(payload)} bytes")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(data: bytes) -> Tuple[List[bytes], int]:
    """Decode the longest valid frame prefix of ``data``.

    Returns ``(payloads, valid_end)`` where ``valid_end`` is the byte
    offset the valid prefix ends at; everything past it is torn or
    corrupt and must be discarded.
    """
    payloads: List[bytes] = []
    pos = 0
    size = len(data)
    while pos + _FRAME_SIZE <= size:
        length, crc = _FRAME.unpack_from(data, pos)
        if length == 0 or length > MAX_PAYLOAD:
            break
        end = pos + _FRAME_SIZE + length
        if end > size:
            break
        payload = bytes(data[pos + _FRAME_SIZE : end])
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        pos = end
    return payloads, pos


class WalRecord:
    """A decoded mutation: ``seq``, ``op`` and the op's key payload."""

    __slots__ = ("seq", "op", "key", "value", "new_key")

    def __init__(self, seq, op, key, value=None, new_key=None):
        self.seq = seq
        self.op = op
        self.key = key
        self.value = value
        self.new_key = new_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = {OP_PUT: "PUT", OP_DEL: "DEL", OP_UPD: "UPD"}.get(
            self.op, self.op
        )
        return f"WalRecord({self.seq}, {name}, {self.key})"


class RecordCodec:
    """Fixed-width binary codec for mutation payloads."""

    def __init__(self, dims: int, width: int, value_bits: int) -> None:
        self.dims = dims
        self.key_bytes = (width + 7) // 8
        self.value_bytes = (value_bits + 7) // 8

    def _pack_key(self, key: Sequence[int]) -> bytes:
        kb = self.key_bytes
        return b"".join(int(v).to_bytes(kb, "little") for v in key)

    def _unpack_key(self, data: bytes, pos: int) -> Tuple[Tuple[int, ...], int]:
        kb = self.key_bytes
        key = tuple(
            int.from_bytes(data[pos + i * kb : pos + (i + 1) * kb], "little")
            for i in range(self.dims)
        )
        return key, pos + self.dims * kb

    def encode_put(self, seq: int, key: Sequence[int], raw_value: int) -> bytes:
        return (
            _SEQ_OP.pack(seq, OP_PUT)
            + self._pack_key(key)
            + int(raw_value).to_bytes(self.value_bytes, "little")
        )

    def encode_del(self, seq: int, key: Sequence[int]) -> bytes:
        return _SEQ_OP.pack(seq, OP_DEL) + self._pack_key(key)

    def encode_update(
        self, seq: int, old_key: Sequence[int], new_key: Sequence[int]
    ) -> bytes:
        return (
            _SEQ_OP.pack(seq, OP_UPD)
            + self._pack_key(old_key)
            + self._pack_key(new_key)
        )

    def decode(self, payload: bytes) -> WalRecord:
        seq, op = _SEQ_OP.unpack_from(payload, 0)
        pos = _SEQ_OP.size
        key, pos = self._unpack_key(payload, pos)
        if op == OP_PUT:
            raw = int.from_bytes(
                payload[pos : pos + self.value_bytes], "little"
            )
            if pos + self.value_bytes != len(payload):
                raise ValueError("trailing bytes in PUT record")
            return WalRecord(seq, op, key, value=raw)
        if op == OP_DEL:
            if pos != len(payload):
                raise ValueError("trailing bytes in DEL record")
            return WalRecord(seq, op, key)
        if op == OP_UPD:
            new_key, pos = self._unpack_key(payload, pos)
            if pos != len(payload):
                raise ValueError("trailing bytes in UPD record")
            return WalRecord(seq, op, key, new_key=new_key)
        raise ValueError(f"unknown WAL op {op}")


class WriteAheadLog:
    """One open WAL file; all writes go through :mod:`repro.store.io`."""

    def __init__(self, path: str, fd: int, size: int) -> None:
        self.path = path
        self._fd: Optional[int] = fd
        self.size = size

    @classmethod
    def create(cls, path: str) -> "WriteAheadLog":
        """Create (or truncate) a fresh, durable, empty log.

        Charged I/O: the file must exist on disk before a manifest
        that references it is swapped in.
        """
        fd = store_io.open_fresh(path)
        store_io.fsync(fd)
        return cls(path, fd, 0)

    @classmethod
    def open(cls, path: str) -> Tuple["WriteAheadLog", List[bytes], int]:
        """Open an existing log for recovery.

        Returns ``(wal, payloads, torn_bytes)``: the decoded longest
        valid prefix and how many trailing bytes were discarded.  The
        torn tail is truncated off so subsequent appends are clean.
        Reads and the repair truncation are recovery-side operations on
        already-durable state and bypass crash accounting.
        """
        try:
            with open(path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            wal = cls.create(path)
            return wal, [], 0
        payloads, valid_end = scan_frames(data)
        torn = len(data) - valid_end
        fd = os.open(path, os.O_WRONLY)
        if torn:
            os.ftruncate(fd, valid_end)
            os.fsync(fd)
        os.lseek(fd, valid_end, os.SEEK_SET)
        return cls(path, fd, valid_end), payloads, torn

    def append(self, payloads: Iterable[bytes], sync: bool = True) -> int:
        """Group-commit ``payloads``: one write, one fsync."""
        if self._fd is None:
            raise ValueError("WAL is closed")
        blob = b"".join(frame(p) for p in payloads)
        if not blob:
            return 0
        store_io.write(self._fd, blob)
        if sync:
            store_io.fsync(self._fd)
        self.size += len(blob)
        return len(blob)

    def sync(self) -> None:
        if self._fd is not None:
            store_io.fsync(self._fd)

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
