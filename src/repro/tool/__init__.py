"""``repro.tool`` -- index CSV point data from the command line.

A small end-user utility on top of the library: build a persistent
PH-tree index over selected numeric columns of a CSV file, then run
window queries, nearest-neighbour lookups and structure reports against
the index file.

    python -m repro.tool build data.csv --columns lon,lat --out idx.pht
    python -m repro.tool query idx.pht --box " -10,40 : 5,55 "
    python -m repro.tool knn idx.pht --point "2.35,48.85" -n 5
    python -m repro.tool stats idx.pht
"""

from repro.tool.cli import main

__all__ = ["main"]
