"""``python -m repro.tool`` dispatches to the CLI."""

import sys

from repro.tool.cli import main

sys.exit(main())
