"""Command-line interface of the CSV indexing tool."""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core import collect_stats
from repro.core.phtree import PHTree
from repro.encoding.ieee import decode_point, encode_point
from repro.obs.log import configure_logging, get_logger
from repro.tool.storage import IndexFile, load_index, save_index

__all__ = ["main"]

_log = get_logger("tool")

#: Full inclusive domain of one encoded (u64) coordinate.
_U64_MAX = (1 << 64) - 1


def _parse_point(text: str, dims: int) -> Tuple[float, ...]:
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != dims:
        raise ValueError(
            f"point {text!r} has {len(parts)} coordinates, index has "
            f"{dims}"
        )
    return tuple(float(p) for p in parts)


def _parse_box(
    text: str, dims: int
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    if ":" not in text:
        raise ValueError(
            "box must be 'x1,y1,... : x2,y2,...' (two corners)"
        )
    low_text, high_text = text.split(":", 1)
    low = _parse_point(low_text, dims)
    high = _parse_point(high_text, dims)
    return (
        tuple(min(a, b) for a, b in zip(low, high)),
        tuple(max(a, b) for a, b in zip(low, high)),
    )


def cmd_build(args: argparse.Namespace) -> int:
    columns = [c.strip() for c in args.columns.split(",") if c.strip()]
    if len(columns) < 1:
        print("error: need at least one column", file=sys.stderr)
        return 2
    source = Path(args.csv)
    tree = PHTree(dims=len(columns), width=64)
    n_rows = 0
    n_duplicates = 0
    started = time.perf_counter()
    with source.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = [
            c for c in columns if c not in (reader.fieldnames or [])
        ]
        if missing:
            print(
                f"error: column(s) {missing} not in CSV header "
                f"{reader.fieldnames}",
                file=sys.stderr,
            )
            return 2
        for row_number, row in enumerate(reader, start=1):
            try:
                point = tuple(float(row[c]) for c in columns)
            except ValueError:
                print(
                    f"warning: skipping row {row_number}: non-numeric "
                    f"value",
                    file=sys.stderr,
                )
                continue
            n_rows += 1
            if tree.put(encode_point(point), row_number) is not None:
                n_duplicates += 1
    elapsed = time.perf_counter() - started
    index = IndexFile(
        tree=tree,
        columns=columns,
        source=str(source),
        n_rows=n_rows,
        n_duplicates=n_duplicates,
    )
    size = save_index(index, Path(args.out))
    print(
        f"indexed {len(tree)} unique points "
        f"({n_duplicates} duplicate positions) from {n_rows} rows "
        f"in {elapsed:.2f}s"
    )
    print(f"wrote {args.out} ({size} bytes, "
          f"{size / max(1, len(tree)):.1f} B/point)")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    index = load_index(Path(args.index))
    box_min, box_max = _parse_box(args.box, index.dims)
    lo, hi = encode_point(box_min), encode_point(box_max)
    if args.learned:
        if args.shards > 1 or args.workers > 0:
            print(
                "error: --learned serves from one frozen snapshot; "
                "drop --shards/--workers",
                file=sys.stderr,
            )
            return 2
        return _query_learned(args, index, lo, hi)
    if args.explain and (args.shards > 1 or args.workers > 0):
        # Request-scoped span waterfall across the shard fan-out:
        # router -> per-shard lock wait -> scan (worker attach/scan
        # when a process pool is used) -> merge.
        from repro.core.serialize import U64ValueCodec
        from repro.obs import span as span_mod
        from repro.parallel import ShardedPHTree

        with ShardedPHTree.build(
            list(index.tree.items()),
            dims=index.dims,
            width=64,
            shards=max(args.shards, 1),
            workers=args.workers,
            value_codec=U64ValueCodec,
        ) as sharded:
            with span_mod.start_trace() as trace:
                results = sharded.query(lo, hi)
        print(trace.render())
        print(f"{len(results)} point(s) in box", file=sys.stderr)
        return 0
    if args.explain:
        # Per-node trace of the single-tree window traversal: the
        # trace explains the kernel's decisions, which are per-tree.
        from repro import obs

        trace = obs.explain_query(index.tree, lo, hi)
        print(trace.render())
        print(
            f"{len(trace.results)} point(s) in box", file=sys.stderr
        )
        return 0
    if args.shards > 1 or args.workers > 0:
        # Fan the window out over a z-sharded copy of the index; row
        # numbers are u64, so the snapshot codec round-trips them.
        from repro.core.serialize import U64ValueCodec
        from repro.parallel import ShardedPHTree

        with ShardedPHTree.build(
            list(index.tree.items()),
            dims=index.dims,
            width=64,
            shards=max(args.shards, 1),
            workers=args.workers,
            value_codec=U64ValueCodec,
        ) as sharded:
            results = sharded.query(lo, hi)
    else:
        results = list(index.tree.query(lo, hi))
    header = ",".join(index.columns) + ",row"
    print(header)
    for encoded, row_number in results[: args.limit]:
        point = decode_point(encoded)
        print(",".join(f"{v:.10g}" for v in point) + f",{row_number}")
    if len(results) > args.limit:
        print(
            f"... {len(results) - args.limit} more "
            f"(raise --limit to see them)",
            file=sys.stderr,
        )
    print(f"{len(results)} point(s) in box", file=sys.stderr)
    return 0


def _query_learned(
    args: argparse.Namespace, index: IndexFile, lo, hi
) -> int:
    """Serve the window from a learned-frozen snapshot of the index.

    With ``--explain`` the row output is replaced by a model report:
    the fitted segmentation, which reads the model served, the
    prediction error it paid, and every fallback to the exact engine
    -- read straight from the ``repro_learned_*`` probes."""
    from repro import obs
    from repro.core.frozen import FrozenPHTree, freeze
    from repro.core.serialize import U64ValueCodec
    from repro.obs import probes as probes_mod

    started = time.perf_counter()
    frozen = FrozenPHTree(
        freeze(index.tree, U64ValueCodec, learned=True), U64ValueCodec
    )
    fit_elapsed = time.perf_counter() - started
    model = frozen.learned_index
    if model is None:
        print("error: index is empty; nothing to fit", file=sys.stderr)
        return 2
    if args.explain:
        obs.reset_all()
        obs.enable()
        try:
            results = list(frozen.query(lo, hi))
        finally:
            obs.disable()
        stats = model.stats()
        print(
            f"learned model: {stats['entries']} entries in "
            f"{stats['segments']} segment(s), eps {stats['eps']}, "
            f"max measured error {stats['max_measured_err']}, "
            f"{stats['dead_segments']} dead segment(s), "
            f"{stats['trailer_bytes']} trailer bytes "
            f"(fit+freeze {fit_elapsed:.3f}s)"
        )
        served = probes_mod.learned_lookups_window.value
        fallbacks = probes_mod.learned_fallbacks_window.value
        consulted = probes_mod.learned_segments_consulted.value
        error_sum = probes_mod.learned_prediction_error.value
        print(
            f"window probes: {served} model-served, "
            f"{fallbacks} fell back to the exact walk"
        )
        mean_err = error_sum / served if served else 0.0
        print(
            f"segments consulted: {consulted}, prediction error: "
            f"{error_sum} rank(s) total ({mean_err:.2f} mean)"
        )
        print(f"{len(results)} point(s) in box", file=sys.stderr)
        return 0
    results = list(frozen.query(lo, hi))
    header = ",".join(index.columns) + ",row"
    print(header)
    for encoded, row_number in results[: args.limit]:
        point = decode_point(encoded)
        print(",".join(f"{v:.10g}" for v in point) + f",{row_number}")
    if len(results) > args.limit:
        print(
            f"... {len(results) - args.limit} more "
            f"(raise --limit to see them)",
            file=sys.stderr,
        )
    print(f"{len(results)} point(s) in box", file=sys.stderr)
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    index = load_index(Path(args.index))
    query = _parse_point(args.point, index.dims)
    if args.explain:
        # Trace the best-first search over the stored (encoded integer)
        # keys; reported distances are in encoded key space.
        from repro import obs

        trace = obs.explain_knn(
            index.tree, encode_point(query), n=args.n
        )
        print(trace.render())
        return 0
    # kNN in float space via the float facade over the restored tree.
    from repro.core.phtree_float import PHTreeF

    facade = PHTreeF.from_int_tree(index.tree)
    results = facade.knn(query, args.n)
    print(",".join(index.columns) + ",row,distance")
    for point, row_number in results:
        distance = sum(
            (a - b) ** 2 for a, b in zip(point, query)
        ) ** 0.5
        print(
            ",".join(f"{v:.10g}" for v in point)
            + f",{row_number},{distance:.6g}"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Dump the whole index back out as CSV (z-order)."""
    index = load_index(Path(args.index))
    out = sys.stdout if args.out is None else open(args.out, "w")
    try:
        out.write(",".join(index.columns) + ",row\n")
        count = 0
        for encoded, row_number in index.tree.items():
            point = decode_point(encoded)
            out.write(
                ",".join(f"{v:.17g}" for v in point) + f",{row_number}\n"
            )
            count += 1
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"exported {count} point(s)", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    index = load_index(Path(args.index))
    stats = collect_stats(index.tree, value_bits=64)
    print(f"source:            {index.source}")
    print(f"columns:           {', '.join(index.columns)}")
    print(f"rows read:         {index.n_rows}")
    print(f"unique points:     {len(index.tree)}")
    print(f"duplicate updates: {index.n_duplicates}")
    print(f"nodes:             {stats.n_nodes}")
    print(f"entry/node ratio:  {stats.entry_to_node_ratio:.2f}")
    print(f"HC / LHC nodes:    {stats.n_hc_nodes} / {stats.n_lhc_nodes}")
    print(f"max depth:         {stats.max_depth} (bound: 64)")
    print(
        f"serialised:        {stats.total_serialized_bytes} bytes "
        f"({stats.serialized_bytes_per_entry:.1f}/point incl. row ids)"
    )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Drive a demonstration workload with instrumentation enabled and
    print the resulting registry (Prometheus text or JSON).

    With ``--shards``/``--workers`` the workload runs against a
    z-sharded copy of the index -- writes, point reads, window + kNN
    fan-outs and a snapshot refresh -- so the per-shard op counts,
    lock-wait times, republish and stale-invalidation counters all
    move.  Without them it exercises the single-tree read paths.
    """
    from repro import obs

    index = load_index(Path(args.index))
    dims = index.dims
    sample = [key for key, _ in zip(index.tree.keys(), range(16))]
    domain_lo = (0,) * dims
    domain_hi = (_U64_MAX,) * dims
    # Full telemetry clear (registry + heat map + flight recorder +
    # plan-cache counts): repeated in-process invocations must print
    # the same workload picture, and the collector-backed gauges
    # publish absolute values from those sources.
    obs.reset_all()
    obs.enable()
    try:
        if args.shards > 1 or args.workers > 0:
            from repro.core.serialize import U64ValueCodec
            from repro.parallel import ShardedPHTree

            _log.info(
                "driving sharded workload (%d shards, %d workers)",
                args.shards,
                args.workers,
            )
            with ShardedPHTree.build(
                list(index.tree.items()),
                dims=dims,
                width=64,
                shards=max(args.shards, 1),
                workers=args.workers,
                value_codec=U64ValueCodec,
            ) as sharded:
                sharded.query(domain_lo, domain_hi)  # publishes snapshots
                for key in sample:
                    sharded.put(key, sharded.get(key))  # bump generations
                sharded.refresh_snapshots()  # republish + invalidate
                sharded.get_many(sample)
                sharded.query_many(
                    [(domain_lo, domain_hi), (domain_lo, domain_lo)]
                )
                if sample:
                    sharded.knn(sample[0], min(4, len(sharded)))
        else:
            _log.info("driving single-tree workload")
            tree = index.tree
            for key in sample:
                tree.contains(key)
            tree.get_many(sample)
            list(tree.query(domain_lo, domain_hi))
            if sample:
                tree.knn(sample[0], min(4, len(tree)))
    finally:
        obs.disable()
    if args.format == "json":
        print(json.dumps(obs.dump_json(), indent=2, sort_keys=True))
    else:
        print(obs.render_prometheus(), end="")
    if args.reset:
        obs.reset_all()
    return 0


def cmd_heat(args: argparse.Namespace) -> int:
    """Drive a read workload sampled from the index's own key
    distribution and print the z-region heat map: where in key space
    the data (and therefore the load) concentrates.

    Every sampled key is probed with a point read, and a window probe
    is fired around a spread of anchors, so the heat buckets carry
    both op counts and scan-latency EWMAs."""
    from repro import obs
    from repro.obs import heat as heat_mod

    index = load_index(Path(args.index))
    tree = index.tree
    keys = [key for key, _ in tree.items()]
    heat_mod.set_levels(args.levels)  # also drops stale buckets
    step = max(1, len(keys) // max(1, args.ops))
    sample = keys[::step][: args.ops]
    anchors = sample[:: max(1, len(sample) // 32)][:32]
    pad = 1 << 44  # a few float ulps wide at 64-bit key width
    obs.enable()
    try:
        for key in sample:
            tree.contains(key)
        for anchor in anchors:
            lo = tuple(max(0, a - pad) for a in anchor)
            hi = tuple(min(_U64_MAX, a + pad) for a in anchor)
            list(tree.query(lo, hi))
    finally:
        obs.disable()
    if args.json:
        print(
            json.dumps(
                heat_mod.snapshot(args.top), indent=2, sort_keys=True
            )
        )
    else:
        print(heat_mod.render(args.top), end="")
        print(
            f"probed {len(sample)} key(s), {len(anchors)} window(s)",
            file=sys.stderr,
        )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Operate a durable WAL+segment store directory: ingest CSV rows,
    compact the segment chain, query windows, report stats.

    The store survives ``kill -9`` at any byte: every mutation is WAL-
    durable when it returns, and reopening the directory recovers the
    committed segments plus the WAL tail."""
    from repro.core.serialize import U64ValueCodec
    from repro.store import DurablePHTree, StoreError

    dims = None
    columns: List[str] = []
    if args.ingest is not None:
        if not args.columns:
            print(
                "error: --ingest needs --columns", file=sys.stderr
            )
            return 2
        columns = [
            c.strip() for c in args.columns.split(",") if c.strip()
        ]
        dims = len(columns)
    if args.ingest is None and not (
        args.compact or args.query or args.stats
    ):
        print(
            "error: nothing to do; pass --ingest CSV, --compact, "
            "--query BOX and/or --stats",
            file=sys.stderr,
        )
        return 2
    try:
        store = DurablePHTree.open(
            args.dir,
            dims=dims,
            width=64,
            shards=args.shards,
            value_codec=U64ValueCodec,
            learned=args.learned,
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        info = store.recovery_info
        if not info.get("created"):
            _log.info(
                "recovered %d segment(s), replayed %d WAL record(s), "
                "discarded %d torn byte(s)",
                info.get("segments", 0),
                info.get("replayed", 0),
                info.get("torn_bytes", 0),
            )
        if args.ingest is not None:
            code = _store_ingest(args, store, columns)
            if code:
                return code
        if args.compact:
            started = time.perf_counter()
            merged = store.compact()
            print(
                f"compacted chain into {merged} segment(s) in "
                f"{time.perf_counter() - started:.2f}s"
            )
        if args.query is not None:
            box_min, box_max = _parse_box(args.query, store.dims)
            lo, hi = encode_point(box_min), encode_point(box_max)
            results = store.query(lo, hi)
            print("point,row" if not columns else
                  ",".join(columns) + ",row")
            for encoded, row_number in results[: args.limit]:
                point = decode_point(encoded)
                print(
                    ",".join(f"{v:.10g}" for v in point)
                    + f",{row_number}"
                )
            if len(results) > args.limit:
                print(
                    f"... {len(results) - args.limit} more "
                    f"(raise --limit to see them)",
                    file=sys.stderr,
                )
            print(f"{len(results)} point(s) in box", file=sys.stderr)
        if args.stats:
            stats = store.stats()
            print(f"path:           {stats['path']}")
            print(f"dims/width:     {stats['dims']}/{stats['width']}")
            print(
                f"shards:         {stats['shards']}"
                f"{' (learned segments)' if stats['learned'] else ''}"
            )
            print(f"entries:        {stats['entries']}")
            print(f"generation:     {stats['generation']}")
            print(
                f"segments:       {stats['segments']} "
                f"({stats['segment_bytes']} bytes)"
            )
            print(
                f"wal:            {stats['wal_bytes']} bytes, "
                f"seq {stats['wal_seq']}"
            )
            print(
                f"pending:        {stats['pending_puts']} put(s), "
                f"{stats['pending_dels']} delete(s)"
            )
            recovery = stats["recovery"]
            if recovery.get("created"):
                last_open = "created fresh"
            else:
                last_open = (
                    f"replayed {recovery.get('replayed', 0)} WAL "
                    f"record(s), {recovery.get('torn_bytes', 0)} torn "
                    f"byte(s) discarded"
                )
            print(f"last open:      {last_open}")
    finally:
        store.close()
    return 0


def _store_ingest(
    args: argparse.Namespace, store: "Any", columns: List[str]
) -> int:
    """Bulk-load CSV rows into the store: group-committed WAL batches,
    then a checkpoint so reopening needs no replay."""
    source = Path(args.ingest)
    batch: List[Tuple[Tuple[int, ...], int]] = []
    n_rows = 0
    started = time.perf_counter()
    with source.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = [
            c for c in columns if c not in (reader.fieldnames or [])
        ]
        if missing:
            print(
                f"error: column(s) {missing} not in CSV header "
                f"{reader.fieldnames}",
                file=sys.stderr,
            )
            return 2
        for row_number, row in enumerate(reader, start=1):
            try:
                point = tuple(float(row[c]) for c in columns)
            except ValueError:
                print(
                    f"warning: skipping row {row_number}: "
                    f"non-numeric value",
                    file=sys.stderr,
                )
                continue
            batch.append((encode_point(point), row_number))
            n_rows += 1
            if len(batch) >= 1024:
                store.put_all(batch)
                batch.clear()
    if batch:
        store.put_all(batch)
    segments = store.checkpoint()
    print(
        f"ingested {n_rows} row(s) ({len(store)} live) into "
        f"{segments} segment(s) in "
        f"{time.perf_counter() - started:.2f}s"
    )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the correctness harness: validate a saved index, fuzz the
    engines against the reference model, and/or drill the parallel
    layer's fault handling.  Returns 0 only if every requested stage
    passes."""
    from repro.check import FuzzConfig, FuzzFailure, run_fuzz, validate_tree

    ran_anything = False
    failed = False
    if args.validate is not None:
        ran_anything = True
        index = load_index(Path(args.validate))
        report = validate_tree(index.tree)
        print(f"validate: {args.validate}: OK ({report})")
    if args.fuzz:
        ran_anything = True
        dims_list = [int(d) for d in str(args.dims).split(",") if d]
        for dims in dims_list:
            config = FuzzConfig(
                dims=dims,
                width=args.width,
                ops=args.ops,
                seed=args.seed,
                distribution=args.distribution,
                learned=args.learned,
                durable=args.durable,
            )
            started = time.perf_counter()
            try:
                report = run_fuzz(config)
            except FuzzFailure as failure:
                failed = True
                print(
                    f"fuzz: dims={dims} FAILED -- {failure}",
                    file=sys.stderr,
                )
                print(failure.repro(), file=sys.stderr)
                continue
            elapsed = time.perf_counter() - started
            learned_tag = " learned" if args.learned else ""
            durable_tag = " durable" if args.durable else ""
            print(
                f"fuzz: dims={dims} width={args.width} "
                f"seed={args.seed} "
                f"distribution={args.distribution}{learned_tag}"
                f"{durable_tag}: "
                f"{report.ops_run} ops, "
                f"{report.validations} validations, final size "
                f"{report.final_size}, {elapsed:.1f}s: OK"
            )
    if args.faults or args.fault_kinds:
        ran_anything = True
        from repro.check.faults import run_fault_drill

        from repro.obs import recorder as recorder_mod

        kinds = (
            [k.strip() for k in args.fault_kinds.split(",") if k.strip()]
            if args.fault_kinds
            else None
        )
        for outcome in run_fault_drill(kinds=kinds):
            status = "PASS" if outcome.passed else "FAIL"
            print(f"faults: {status} {outcome.fault}: {outcome.detail}")
            if not outcome.passed:
                failed = True
                print(
                    recorder_mod.render_events(outcome.events),
                    end="",
                    file=sys.stderr,
                )
    if not ran_anything:
        print(
            "error: nothing to do; pass --validate INDEX, --fuzz "
            "and/or --faults (optionally --fault-kinds)",
            file=sys.stderr,
        )
        return 2
    return 1 if failed else 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tool",
        description=(
            "Index CSV point data with a PH-tree.  Mutable trees use "
            "the packed-slab arena layout by default; set "
            "REPRO_PHTREE_LAYOUT=object to fall back to the object "
            "engine."
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v: lifecycle INFO; -vv: per-shard DEBUG (stderr)",
    )
    # The same flag is accepted after the subcommand; SUPPRESS keeps the
    # subparser from clobbering a count already parsed before it.
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="index a CSV file", parents=[verbosity]
    )
    build.add_argument("csv", help="source CSV (with a header row)")
    build.add_argument(
        "--columns",
        "-c",
        required=True,
        help="comma-separated numeric column names to index",
    )
    build.add_argument(
        "--out", "-o", required=True, help="index file to write"
    )
    build.set_defaults(func=cmd_build)

    query = sub.add_parser(
        "query", help="window query", parents=[verbosity]
    )
    query.add_argument("index", help="index file")
    query.add_argument(
        "--box",
        "-b",
        required=True,
        help="inclusive box 'x1,y1 : x2,y2'",
    )
    query.add_argument("--limit", "-l", type=int, default=20)
    query.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fan the query out over this many z-order shards "
        "(power of two; default: %(default)s, serial)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for the sharded fan-out (0 = stay "
        "in-process; default: %(default)s)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print a per-node trace of the window traversal instead "
        "of the matching rows",
    )
    query.add_argument(
        "--learned",
        action="store_true",
        help="serve the window from a learned-frozen snapshot "
        "(model-seeded rank scan); with --explain, report the model's "
        "segmentation, prediction error and fallback counts instead "
        "of rows",
    )
    query.set_defaults(func=cmd_query)

    knn = sub.add_parser(
        "knn", help="k nearest neighbours", parents=[verbosity]
    )
    knn.add_argument("index", help="index file")
    knn.add_argument("--point", "-p", required=True, help="'x,y,...'")
    knn.add_argument("-n", type=int, default=1)
    knn.add_argument(
        "--explain",
        action="store_true",
        help="print a trace of the best-first search (encoded key "
        "space) instead of the neighbours",
    )
    knn.set_defaults(func=cmd_knn)

    stats = sub.add_parser(
        "stats", help="index structure report", parents=[verbosity]
    )
    stats.add_argument("index", help="index file")
    stats.set_defaults(func=cmd_stats)

    export = sub.add_parser(
        "export",
        help="dump the index content as CSV (z-order)",
        parents=[verbosity],
    )
    export.add_argument("index", help="index file")
    export.add_argument(
        "--out", "-o", default=None, help="output CSV (default: stdout)"
    )
    export.set_defaults(func=cmd_export)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented workload and print the metrics "
        "registry",
        parents=[verbosity],
    )
    metrics.add_argument("index", help="index file")
    metrics.add_argument(
        "--shards",
        type=int,
        default=1,
        help="drive the workload through this many z-order shards "
        "(power of two; default: %(default)s, single tree)",
    )
    metrics.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for the sharded workload (0 = live "
        "reads; default: %(default)s)",
    )
    metrics.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format (default: %(default)s)",
    )
    metrics.add_argument(
        "--reset",
        action="store_true",
        help="clear all telemetry (registry, heat map, flight "
        "recorder, plan-cache counts) after printing",
    )
    metrics.set_defaults(func=cmd_metrics)

    heat = sub.add_parser(
        "heat",
        help="drive a sampled read workload and print the z-region "
        "heat map",
        parents=[verbosity],
    )
    heat.add_argument("index", help="index file")
    heat.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many of the hottest regions to print "
        "(default: %(default)s)",
    )
    heat.add_argument(
        "--levels",
        type=int,
        default=4,
        help="z-prefix depth in bits per dimension "
        "(default: %(default)s)",
    )
    heat.add_argument(
        "--ops",
        type=int,
        default=4096,
        help="point-read probes to sample from the index "
        "(default: %(default)s)",
    )
    heat.add_argument(
        "--json",
        action="store_true",
        help="print the heat snapshot as JSON instead of a histogram",
    )
    heat.set_defaults(func=cmd_heat)

    check = sub.add_parser(
        "check",
        help="correctness harness: invariant validation, model-based "
        "fuzzing, fault-injection drill",
        parents=[verbosity],
    )
    check.add_argument(
        "--validate",
        metavar="INDEX",
        default=None,
        help="validate the structural invariants of a saved index file",
    )
    check.add_argument(
        "--fuzz",
        action="store_true",
        help="run the model-based differential fuzzer",
    )
    check.add_argument(
        "--faults",
        action="store_true",
        help="run the parallel-layer fault-injection drill",
    )
    check.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzzer seed (default: %(default)s)",
    )
    check.add_argument(
        "--ops",
        type=int,
        default=2000,
        help="operations per fuzz run (default: %(default)s)",
    )
    check.add_argument(
        "--dims",
        default="2,6,14",
        help="comma-separated dimensionalities to fuzz "
        "(default: %(default)s)",
    )
    check.add_argument(
        "--width",
        type=int,
        default=16,
        help="key width in bits for fuzzing (default: %(default)s)",
    )
    check.add_argument(
        "--learned",
        action="store_true",
        help="add the learned-router sharded engine to the fuzz "
        "lockstep (learned-frozen reads are always checked by the "
        "deep validations)",
    )
    check.add_argument(
        "--distribution",
        choices=("cube", "cluster", "adversarial"),
        default="cube",
        help="fuzz key distribution; 'adversarial' is the "
        "duplicate-heavy z-stream stressing the learned error bound "
        "(default: %(default)s)",
    )
    check.add_argument(
        "--durable",
        action="store_true",
        help="add a DurablePHTree to the fuzz lockstep: random "
        "flush/compact/close-and-reopen are interleaved and reopen "
        "parity vs the reference model is asserted",
    )
    check.add_argument(
        "--fault-kinds",
        default=None,
        metavar="K1,K2",
        help="comma-separated subset of fault scenarios to drill "
        "(implies --faults); e.g. 'disk-flush-kill,disk-torn-wal'",
    )
    check.set_defaults(func=cmd_check)

    store = sub.add_parser(
        "store",
        help="durable WAL+segment store: ingest, compact, query, "
        "stats on a crash-safe directory",
        parents=[verbosity],
    )
    store.add_argument("dir", help="store directory (created on first use)")
    store.add_argument(
        "--ingest",
        metavar="CSV",
        default=None,
        help="bulk-load rows from a CSV file (needs --columns)",
    )
    store.add_argument(
        "--columns",
        "-c",
        default=None,
        help="comma-separated numeric column names to index",
    )
    store.add_argument(
        "--learned",
        action="store_true",
        help="embed PHL1 learned models in flushed segments",
    )
    store.add_argument(
        "--shards",
        type=int,
        default=4,
        help="z-order shards of the live tree (power of two; "
        "default: %(default)s)",
    )
    store.add_argument(
        "--compact",
        action="store_true",
        help="merge the whole segment chain (one segment per shard)",
    )
    store.add_argument(
        "--query",
        metavar="BOX",
        default=None,
        help="inclusive window 'x1,y1 : x2,y2' in source coordinates",
    )
    store.add_argument("--limit", "-l", type=int, default=20)
    store.add_argument(
        "--stats",
        action="store_true",
        help="print the store's manifest/WAL/segment statistics",
    )
    store.set_defaults(func=cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CSV-indexing CLI; returns a process exit code."""
    args = _parser().parse_args(argv)
    configure_logging(args.verbose)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
