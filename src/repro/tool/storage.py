"""Index-file container for the CSV tool.

Layout: ``PHIX`` magic, a 4-byte big-endian JSON-metadata length, the
UTF-8 JSON metadata (column names, row counts), then the serialised
PH-tree (see :mod:`repro.core.serialize`).  Values stored with each point
are the 1-based CSV row numbers (u64), so query results can point back
into the source file.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.phtree import PHTree
from repro.core.serialize import (
    U64ValueCodec,
    deserialize_tree,
    serialize_tree,
)

__all__ = ["IndexFile", "load_index", "save_index"]

_MAGIC = b"PHIX"


class IndexFile:
    """An on-disk PH-tree index plus its metadata."""

    def __init__(
        self,
        tree: PHTree,
        columns: List[str],
        source: str,
        n_rows: int,
        n_duplicates: int,
    ) -> None:
        self.tree = tree
        self.columns = columns
        self.source = source
        self.n_rows = n_rows
        self.n_duplicates = n_duplicates

    @property
    def dims(self) -> int:
        """Number of indexed columns."""
        return len(self.columns)


def save_index(index: IndexFile, path: Path) -> int:
    """Write the index container; returns the byte size."""
    metadata = json.dumps(
        {
            "columns": index.columns,
            "source": index.source,
            "n_rows": index.n_rows,
            "n_duplicates": index.n_duplicates,
        }
    ).encode("utf-8")
    tree_bytes = serialize_tree(index.tree, U64ValueCodec)
    payload = (
        _MAGIC + struct.pack(">I", len(metadata)) + metadata + tree_bytes
    )
    path.write_bytes(payload)
    return len(payload)


def load_index(path: Path) -> IndexFile:
    """Read an index container written by :func:`save_index`."""
    data = path.read_bytes()
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValueError(f"{path} is not a PH-tree index file")
    offset = len(_MAGIC)
    (metadata_len,) = struct.unpack_from(">I", data, offset)
    offset += 4
    metadata: Dict = json.loads(
        data[offset:offset + metadata_len].decode("utf-8")
    )
    offset += metadata_len
    tree = deserialize_tree(data[offset:], U64ValueCodec)
    return IndexFile(
        tree=tree,
        columns=list(metadata["columns"]),
        source=str(metadata["source"]),
        n_rows=int(metadata["n_rows"]),
        n_duplicates=int(metadata["n_duplicates"]),
    )
