"""Query workload generators matching the paper's Sections 4.3.2-4.3.3.

- :func:`repro.workloads.point_queries.make_point_queries` -- the 50/50 mix
  of existing and random query points.
- :func:`repro.workloads.range_queries.make_volume_boxes` -- random-edged
  cuboids normalised to a target volume fraction (TIGER: 1% of the area,
  CUBE: 0.1% of the volume).
- :func:`repro.workloads.range_queries.make_cluster_boxes` -- the CLUSTER
  axis-slab queries (x-extent 0.01%, full extent elsewhere).
"""

from repro.workloads.point_queries import make_point_queries
from repro.workloads.range_queries import (
    data_bounds,
    make_cluster_boxes,
    make_volume_boxes,
)

__all__ = [
    "data_bounds",
    "make_cluster_boxes",
    "make_point_queries",
    "make_volume_boxes",
]
