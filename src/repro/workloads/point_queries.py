"""Point-query workloads (paper Section 4.3.2).

"Point queries were created randomly, having a 50% chance of querying an
existing data point or otherwise querying a random coordinate in the
allowed query range."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.datasets.rng import make_rng

__all__ = ["make_point_queries"]

Point = Tuple[float, ...]


def make_point_queries(
    points: Sequence[Point],
    n_queries: int,
    bounds: Tuple[Point, Point],
    existing_fraction: float = 0.5,
    seed: int = 0,
) -> List[Point]:
    """Build the paper's point-query mix.

    ``bounds`` is the inclusive ``(lower, upper)`` corner pair of the
    allowed query range (for TIGER, the data's min/max per coordinate; for
    the synthetic sets, ``[0, 1]`` per dimension).

    >>> qs = make_point_queries([(0.5, 0.5)], 4, ((0.0, 0.0), (1.0, 1.0)),
    ...                         seed=1)
    >>> len(qs)
    4
    """
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    if not 0.0 <= existing_fraction <= 1.0:
        raise ValueError(
            f"existing_fraction must be in [0, 1], got {existing_fraction}"
        )
    if not points and existing_fraction > 0.0:
        raise ValueError("cannot sample existing points from an empty set")
    lower, upper = bounds
    dims = len(lower)
    rng = make_rng(seed)
    queries: List[Point] = []
    for _ in range(n_queries):
        if rng.random() < existing_fraction:
            queries.append(points[rng.randrange(len(points))])
        else:
            queries.append(
                tuple(
                    lower[d] + rng.random() * (upper[d] - lower[d])
                    for d in range(dims)
                )
            )
    return queries
