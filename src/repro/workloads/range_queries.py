"""Range-query workloads (paper Section 4.3.3).

Two query shapes:

- **volume boxes** (TIGER, CUBE): "rectangles or k-dimensional cuboids
  where all edges have random length, except one randomly chosen edge that
  is adjusted so that the query covers 1% of the area of TIGER/Line data or
  0.1% of the volume of CUBE data",
- **cluster boxes** (CLUSTER): "cuboids that extend from 0.0 to 1.0 in
  every dimension except for the x-axis where they have an extension of
  0.01% and are randomly located between 0.0 and 0.1".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.datasets.rng import make_rng

__all__ = ["data_bounds", "make_cluster_boxes", "make_volume_boxes"]

Point = Tuple[float, ...]
Box = Tuple[Point, Point]


def data_bounds(points: Sequence[Point]) -> Box:
    """Per-dimension min/max of a point set (the TIGER query range)."""
    if not points:
        raise ValueError("cannot compute bounds of an empty point set")
    dims = len(points[0])
    lower = [float("inf")] * dims
    upper = [float("-inf")] * dims
    for point in points:
        for d, v in enumerate(point):
            if v < lower[d]:
                lower[d] = v
            if v > upper[d]:
                upper[d] = v
    return tuple(lower), tuple(upper)


def make_volume_boxes(
    bounds: Box,
    n_queries: int,
    volume_fraction: float,
    seed: int = 0,
) -> List[Box]:
    """Random-edged boxes normalised to ``volume_fraction`` of the data
    volume.

    Edge lengths are drawn uniformly; one randomly chosen edge is then
    rescaled so the box volume hits the target exactly (re-drawing in the
    rare case where that edge would have to exceed the data extent).

    >>> boxes = make_volume_boxes(((0.0, 0.0), (1.0, 1.0)), 3, 0.01, seed=1)
    >>> all(hi >= lo for box in boxes for lo, hi in zip(*box))
    True
    """
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    if not 0.0 < volume_fraction <= 1.0:
        raise ValueError(
            f"volume_fraction must be in (0, 1], got {volume_fraction}"
        )
    lower, upper = bounds
    dims = len(lower)
    extents = [upper[d] - lower[d] for d in range(dims)]
    if any(e <= 0 for e in extents):
        raise ValueError("degenerate bounds: zero extent in a dimension")
    total_volume = 1.0
    for e in extents:
        total_volume *= e
    target = volume_fraction * total_volume
    rng = make_rng(seed)
    boxes: List[Box] = []
    while len(boxes) < n_queries:
        lengths = [rng.random() * extents[d] for d in range(dims)]
        adjust = rng.randrange(dims)
        volume_rest = 1.0
        for d in range(dims):
            if d != adjust:
                volume_rest *= lengths[d]
        if volume_rest <= 0.0:
            continue
        lengths[adjust] = target / volume_rest
        if lengths[adjust] > extents[adjust]:
            continue  # cannot reach the target volume with this draw
        box_lower = []
        box_upper = []
        for d in range(dims):
            start = lower[d] + rng.random() * (extents[d] - lengths[d])
            box_lower.append(start)
            box_upper.append(start + lengths[d])
        boxes.append((tuple(box_lower), tuple(box_upper)))
    return boxes


def make_cluster_boxes(
    dims: int,
    n_queries: int,
    x_extent: float = 0.0001,
    x_range: Tuple[float, float] = (0.0, 0.1),
    seed: int = 0,
) -> List[Box]:
    """The CLUSTER query slabs: thin in x, full extent elsewhere.

    The default ``x_extent`` of 0.0001 is the paper's "extension of 0.01%"
    of the unit axis; slabs start uniformly in ``x_range``.

    >>> (lo, hi), = make_cluster_boxes(3, 1, seed=4)
    >>> lo[1], hi[1], lo[2], hi[2]
    (0.0, 1.0, 0.0, 1.0)
    """
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    rng = make_rng(seed)
    x_lo, x_hi = x_range
    boxes: List[Box] = []
    for _ in range(n_queries):
        start = x_lo + rng.random() * (x_hi - x_lo)
        box_lower = (start,) + (0.0,) * (dims - 1)
        box_upper = (start + x_extent,) + (1.0,) * (dims - 1)
        boxes.append((box_lower, box_upper))
    return boxes
