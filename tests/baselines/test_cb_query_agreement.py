"""All CB-tree range-query strategies must agree: CB1 scan, CB1 z-order
skip-scan, CB2 prefix-pruned, and the PH-tree as reference."""

from __future__ import annotations

import random

import pytest

from repro.baselines import CritBitTree, PatriciaTrie, PHTreeIndex


@pytest.fixture
def loaded_structures():
    rng = random.Random(17)
    cb1 = CritBitTree(dims=2)
    cb2 = PatriciaTrie(dims=2)
    ph = PHTreeIndex(dims=2)
    points = []
    for _ in range(1200):
        p = (rng.uniform(-3, 3), rng.uniform(-3, 3))
        points.append(p)
        for index in (cb1, cb2, ph):
            index.put(p)
    return cb1, cb2, ph, points, rng


class TestFourWayAgreement:
    def test_random_boxes(self, loaded_structures):
        cb1, cb2, ph, points, rng = loaded_structures
        for _ in range(20):
            lo = (rng.uniform(-3, 2), rng.uniform(-3, 2))
            hi = (lo[0] + rng.uniform(0, 2), lo[1] + rng.uniform(0, 2))
            reference = sorted(p for p, _ in ph.query(lo, hi))
            assert sorted(p for p, _ in cb1.query(lo, hi)) == reference
            assert (
                sorted(p for p, _ in cb1.query_zorder(lo, hi))
                == reference
            )
            assert sorted(p for p, _ in cb2.query(lo, hi)) == reference

    def test_boxes_missing_everything(self, loaded_structures):
        cb1, cb2, ph, _, __ = loaded_structures
        lo, hi = (10.0, 10.0), (11.0, 11.0)
        assert list(cb1.query(lo, hi)) == []
        assert list(cb1.query_zorder(lo, hi)) == []
        assert list(cb2.query(lo, hi)) == []
        assert list(ph.query(lo, hi)) == []

    def test_negative_quadrant_boxes(self, loaded_structures):
        """Negative doubles invert bit order under raw IEEE; the encoded
        space must keep all four strategies aligned."""
        cb1, cb2, ph, _, __ = loaded_structures
        lo, hi = (-3.0, -3.0), (-0.5, -0.5)
        reference = sorted(p for p, _ in ph.query(lo, hi))
        assert len(reference) > 10
        assert sorted(p for p, _ in cb1.query_zorder(lo, hi)) == (
            reference
        )
        assert sorted(p for p, _ in cb2.query(lo, hi)) == reference

    def test_agreement_survives_deletions(self, loaded_structures):
        cb1, cb2, ph, points, rng = loaded_structures
        victims = list(dict.fromkeys(points))[:400]
        for p in victims:
            cb1.remove(p)
            cb2.remove(p)
            ph.remove(p)
        lo, hi = (-1.0, -1.0), (1.0, 1.0)
        reference = sorted(p for p, _ in ph.query(lo, hi))
        assert sorted(p for p, _ in cb1.query_zorder(lo, hi)) == (
            reference
        )
        assert sorted(p for p, _ in cb2.query(lo, hi)) == reference
