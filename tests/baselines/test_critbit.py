"""CB1-specific tests: crit-bit structure over interleaved keys."""

from __future__ import annotations

import random

import pytest

from repro.baselines.critbit import CritBitTree, _Inner, _Leaf


def check_critbit_invariants(tree):
    """Crit-bit invariants: inner bit indices strictly increase downward,
    and every leaf's path matches its code's bits."""
    if tree._root is None:
        return 0
    total_bits = tree._dims * 64
    leaves = 0
    stack = [(tree._root, -1, [])]
    while stack:
        node, parent_bit, path = stack.pop()
        if isinstance(node, _Inner):
            assert node.bit > parent_bit
            assert 0 <= node.bit < total_bits
            stack.append((node.left, node.bit, path + [(node.bit, 0)]))
            stack.append((node.right, node.bit, path + [(node.bit, 1)]))
        else:
            leaves += 1
            for bit_index, expected in path:
                actual = (node.code >> (total_bits - 1 - bit_index)) & 1
                assert actual == expected
    return leaves


class TestStructure:
    def test_invariants_after_random_mutations(self):
        rng = random.Random(3)
        tree = CritBitTree(dims=2)
        alive = set()
        for _ in range(400):
            if rng.random() < 0.65 or not alive:
                p = (rng.uniform(-1, 1), rng.uniform(-1, 1))
                tree.put(p)
                alive.add(p)
            else:
                p = rng.choice(sorted(alive))
                tree.remove(p)
                alive.discard(p)
        assert check_critbit_invariants(tree) == len(alive) == len(tree)

    def test_single_leaf_root(self):
        tree = CritBitTree(dims=2)
        tree.put((0.5, 0.5))
        assert isinstance(tree._root, _Leaf)
        tree.remove((0.5, 0.5))
        assert tree._root is None

    def test_inner_count_is_leaves_minus_one(self):
        rng = random.Random(5)
        tree = CritBitTree(dims=3)
        points = {
            tuple(rng.uniform(0, 1) for _ in range(3)) for _ in range(100)
        }
        for p in points:
            tree.put(p)
        inners = 0
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                inners += 1
                stack.extend((node.left, node.right))
        assert inners == len(points) - 1

    def test_depth_reports_binary_tree_depth(self):
        tree = CritBitTree(dims=1)
        assert tree.depth() == 0
        tree.put((0.5,))
        assert tree.depth() == 1
        tree.put((0.25,))
        assert tree.depth() == 2


class TestBinaryTreeHandicap:
    def test_depth_grows_with_k_for_boolean_like_data(self):
        """The paper's Section 2 argument: locating a key among keys that
        differ only in the first bit-layer takes up to k comparisons in a
        binary trie (vs 1 node in the PH-tree)."""
        deep = {}
        for k in (2, 8, 16):
            tree = CritBitTree(dims=k)
            rng = random.Random(k)
            for _ in range(64):
                tree.put(tuple(float(rng.randrange(2)) for _ in range(k)))
            deep[k] = tree.depth()
        assert deep[2] < deep[8] <= deep[16]


class TestUpdateSemantics:
    def test_put_returns_previous(self):
        tree = CritBitTree(dims=2)
        assert tree.put((0.5, 0.5), "a") is None
        assert tree.put((0.5, 0.5), "b") == "a"
        assert len(tree) == 1

    def test_remove_missing(self):
        tree = CritBitTree(dims=2)
        with pytest.raises(KeyError):
            tree.remove((0.1, 0.1))
        tree.put((0.5, 0.5))
        with pytest.raises(KeyError):
            tree.remove((0.1, 0.1))

    def test_negative_zero_folded(self):
        tree = CritBitTree(dims=1)
        tree.put((-0.0,), "z")
        assert tree.get((0.0,)) == "z"
