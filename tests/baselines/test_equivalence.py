"""Cross-structure equivalence: every index must give identical answers to
the brute-force oracle on identical random workloads."""

from __future__ import annotations

import random

import pytest

from repro.baselines import make_index
from repro.baselines.interface import INDEX_NAMES

TREE_NAMES = [n for n in INDEX_NAMES if n not in ("d[]", "o[]")]


def workload(seed, dims, n):
    rng = random.Random(seed)
    points = list(
        dict.fromkeys(
            tuple(rng.uniform(-1, 1) for _ in range(dims))
            for _ in range(n)
        )
    )
    return rng, points


@pytest.mark.parametrize("name", INDEX_NAMES)
@pytest.mark.parametrize("dims", [1, 2, 3])
class TestAgainstOracle:
    def test_full_lifecycle(self, name, dims):
        rng, points = workload(dims * 13, dims, 400)
        oracle = {}
        index = make_index(name, dims=dims)
        # Mixed inserts and updates.
        for i, point in enumerate(points):
            assert index.put(point, i) is None
            oracle[point] = i
        for point in points[::5]:
            assert index.put(point, "updated") == oracle[point]
            oracle[point] = "updated"
        assert len(index) == len(oracle)
        # Lookups: hits and misses.
        for point in points[::3]:
            assert index.get(point) == oracle[point]
            assert index.contains(point)
        for _ in range(50):
            probe = tuple(rng.uniform(-1, 1) for _ in range(dims))
            assert index.contains(probe) == (probe in oracle)
        # Range queries.
        for _ in range(15):
            lo = tuple(rng.uniform(-1, 0.5) for _ in range(dims))
            hi = tuple(v + rng.uniform(0, 0.8) for v in lo)
            got = sorted(p for p, _ in index.query(lo, hi))
            want = sorted(
                p
                for p in oracle
                if all(
                    lo[d] <= p[d] <= hi[d] for d in range(dims)
                )
            )
            assert got == want
        # Deletions, then re-verify.
        victims = points[:150]
        for point in victims:
            assert index.remove(point) == oracle.pop(point)
        assert len(index) == len(oracle)
        for point in victims[:30]:
            assert not index.contains(point)
            with pytest.raises(KeyError):
                index.remove(point)
        for point in list(oracle)[:30]:
            assert index.contains(point)
        # Queries still correct after deletions.
        lo = tuple(-1.0 for _ in range(dims))
        hi = tuple(1.0 for _ in range(dims))
        assert sorted(p for p, _ in index.query(lo, hi)) == sorted(oracle)


@pytest.mark.parametrize("name", ["PH", "KD1", "KD2", "d[]", "o[]"])
class TestKnnAgreement:
    def test_knn_matches_brute_force(self, name):
        rng, points = workload(99, 2, 300)
        index = make_index(name, dims=2)
        for point in points:
            index.put(point)
        for _ in range(10):
            query = (rng.uniform(-1, 1), rng.uniform(-1, 1))

            def d2(p):
                return sum((a - b) ** 2 for a, b in zip(p, query))

            got = [round(d2(p), 12) for p, _ in index.knn(query, 7)]
            want = [round(d2(p), 12) for p in sorted(points, key=d2)[:7]]
            assert got == want


class TestKnnUnsupported:
    @pytest.mark.parametrize("name", ["CB1", "CB2"])
    def test_raises_not_implemented(self, name):
        index = make_index(name, dims=2)
        index.put((0.0, 0.0))
        with pytest.raises(NotImplementedError):
            index.knn((0.0, 0.0), 1)


class TestIdenticalStructuralAnswers:
    """All tree structures must return the same multiset of entries for
    the same query, including after interleaved mutations."""

    def test_interleaved_mutations(self):
        rng = random.Random(4)
        dims = 2
        indexes = {name: make_index(name, dims=dims) for name in TREE_NAMES}
        oracle = {}
        for step in range(600):
            action = rng.random()
            if action < 0.6 or not oracle:
                point = (rng.uniform(0, 1), rng.uniform(0, 1))
                for index in indexes.values():
                    index.put(point, step)
                oracle[point] = step
            elif action < 0.8:
                point = rng.choice(sorted(oracle))
                for index in indexes.values():
                    assert index.remove(point) == oracle[point]
                del oracle[point]
            else:
                lo = (rng.uniform(0, 0.8), rng.uniform(0, 0.8))
                hi = (lo[0] + 0.2, lo[1] + 0.2)
                want = sorted(
                    p
                    for p in oracle
                    if lo[0] <= p[0] <= hi[0] and lo[1] <= p[1] <= hi[1]
                )
                for name, index in indexes.items():
                    got = sorted(p for p, _ in index.query(lo, hi))
                    assert got == want, name
        for name, index in indexes.items():
            assert len(index) == len(oracle), name
