"""Tests for the SpatialIndex factory and the PH-tree adapter's memory
accounting."""

from __future__ import annotations

import pytest

from repro.baselines import PHTreeIndex, make_index
from repro.baselines.adapter import phtree_memory_bytes
from repro.baselines.interface import INDEX_NAMES
from repro.memory.model import JvmMemoryModel


class TestFactory:
    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_creates_matching_structure(self, name):
        index = make_index(name, dims=3)
        assert index.name == name
        assert index.dims == 3
        assert len(index) == 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_index("RTREE", dims=2)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            make_index("PH", dims=0)

    def test_kwargs_forwarded(self):
        index = make_index("PH", dims=2, hc_mode="lhc")
        index.put((0.5, 0.5))
        assert not index.tree.int_tree.root.container.is_hc


class TestBytesPerEntryHelper:
    def test_zero_for_empty(self):
        assert make_index("PH", dims=2).bytes_per_entry() == 0.0

    def test_divides_by_count(self):
        index = make_index("d[]", dims=2)
        for i in range(10):
            index.put((float(i), 0.0))
        assert index.bytes_per_entry() == pytest.approx(
            index.memory_bytes() / 10
        )


class TestPHTreeAdapterMemory:
    def test_value_refs_charged_only_when_values_stored(self):
        keyed = PHTreeIndex(dims=2)
        valued = PHTreeIndex(dims=2)
        points = [(float(i), float(i * 2)) for i in range(200)]
        for p in points:
            keyed.put(p)
            valued.put(p, "payload")
        assert valued.memory_bytes() > keyed.memory_bytes()

    def test_memory_grows_with_entries(self):
        index = PHTreeIndex(dims=2)
        sizes = []
        for i in range(1, 401):
            index.put((float(i), float(i % 17)))
            if i % 100 == 0:
                sizes.append(index.memory_bytes())
        assert sizes == sorted(sizes)
        assert sizes[0] > 0

    def test_phtree_memory_bytes_empty(self):
        index = PHTreeIndex(dims=2)
        assert phtree_memory_bytes(index.tree.int_tree) == 0

    def test_model_parameter_respected(self):
        index = PHTreeIndex(dims=2)
        for i in range(100):
            index.put((float(i), float(i)))
        compressed = index.memory_bytes(JvmMemoryModel.compressed_oops())
        uncompressed = index.memory_bytes(JvmMemoryModel.uncompressed())
        assert uncompressed > compressed
