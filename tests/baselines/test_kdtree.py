"""KD1-specific tests: lazy deletion, structure, memory accounting."""

from __future__ import annotations

import random

import pytest

from repro.baselines.kdtree import KDTree
from repro.memory.model import JvmMemoryModel


class TestLazyDeletion:
    def test_deleted_nodes_stay_allocated(self):
        tree = KDTree(dims=2)
        for i in range(10):
            tree.put((float(i), float(i)))
        assert tree.node_count == 10
        for i in range(5):
            tree.remove((float(i), float(i)))
        assert len(tree) == 5
        assert tree.node_count == 10  # lazy: nodes not reclaimed

    def test_memory_includes_deleted_nodes(self):
        tree = KDTree(dims=2)
        for i in range(10):
            tree.put((float(i), float(i)))
        before = tree.memory_bytes()
        for i in range(5):
            tree.remove((float(i), float(i)))
        assert tree.memory_bytes() == before

    def test_reinsert_revives_deleted_node(self):
        tree = KDTree(dims=2)
        tree.put((1.0, 2.0), "a")
        tree.remove((1.0, 2.0))
        assert tree.put((1.0, 2.0), "b") is None  # was deleted
        assert tree.node_count == 1  # reused, not re-allocated
        assert tree.get((1.0, 2.0)) == "b"

    def test_deleted_nodes_invisible_to_queries(self):
        tree = KDTree(dims=2)
        tree.put((0.5, 0.5))
        tree.put((0.6, 0.6))
        tree.remove((0.5, 0.5))
        got = [p for p, _ in tree.query((0.0, 0.0), (1.0, 1.0))]
        assert got == [(0.6, 0.6)]
        assert not tree.contains((0.5, 0.5))
        assert tree.get((0.5, 0.5), "gone") == "gone"


class TestInsertionOrderDependence:
    def test_structure_depends_on_order(self):
        """Unlike the PH-tree, the kD-tree's depth depends on insertion
        order -- sorted input degenerates it (paper Section 2)."""
        points = [(float(i), 0.0) for i in range(64)]
        sorted_tree = KDTree(dims=2)
        for p in points:
            sorted_tree.put(p)
        shuffled = list(points)
        random.Random(0).shuffle(shuffled)
        shuffled_tree = KDTree(dims=2)
        for p in shuffled:
            shuffled_tree.put(p)

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(sorted_tree._root) == 64  # fully degenerate
        assert depth(shuffled_tree._root) < 64


class TestMemoryModel:
    def test_matches_java_layout_3d(self):
        # node 32 + wrapper 16 + double[3] 40 = 88 per entry under
        # compressed oops.
        tree = KDTree(dims=3)
        tree.put((0.1, 0.2, 0.3))
        assert tree.memory_bytes(JvmMemoryModel.compressed_oops()) == 88

    def test_uncompressed_is_larger(self):
        tree = KDTree(dims=3)
        tree.put((0.1, 0.2, 0.3))
        assert tree.memory_bytes(
            JvmMemoryModel.uncompressed()
        ) > tree.memory_bytes(JvmMemoryModel.compressed_oops())


class TestValidation:
    def test_dimension_check(self):
        tree = KDTree(dims=2)
        with pytest.raises(ValueError):
            tree.put((1.0,))

    def test_remove_missing(self):
        tree = KDTree(dims=2)
        with pytest.raises(KeyError):
            tree.remove((1.0, 1.0))
