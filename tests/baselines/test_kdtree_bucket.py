"""KD2-specific tests: eager find-min deletion preserves the kD-tree
invariant under adversarial sequences."""

from __future__ import annotations

import random

import pytest

from repro.baselines.kdtree_bucket import BucketKDTree


def check_invariant(node, depth, dims, lo=None, hi=None):
    """Verify 'left strictly less, right greater-or-equal' recursively."""
    if node is None:
        return 0
    axis = depth % dims
    count = 1
    if node.left is not None:
        assert node.left.point[axis] < node.point[axis] or _subtree_all(
            node.left, axis, node.point[axis], strict_less=True
        )
    count += check_invariant(node.left, depth + 1, dims)
    count += check_invariant(node.right, depth + 1, dims)
    return count


def _subtree_all(node, axis, bound, strict_less):
    if node is None:
        return True
    ok = (
        node.point[axis] < bound
        if strict_less
        else node.point[axis] >= bound
    )
    return (
        ok
        and _subtree_all(node.left, axis, bound, strict_less)
        and _subtree_all(node.right, axis, bound, strict_less)
    )


def full_invariant(node, depth, dims):
    """Strict subtree-wide invariant check."""
    if node is None:
        return 0
    axis = depth % dims
    assert _subtree_all(node.left, axis, node.point[axis], True)
    assert _subtree_all(node.right, axis, node.point[axis], False)
    return (
        1
        + full_invariant(node.left, depth + 1, dims)
        + full_invariant(node.right, depth + 1, dims)
    )


class TestEagerDeletion:
    def test_nodes_reclaimed(self):
        tree = BucketKDTree(dims=2)
        for i in range(20):
            tree.put((float(i % 5), float(i // 5)))
        n = len(tree)
        before = tree.memory_bytes()
        tree.remove((0.0, 0.0))
        assert len(tree) == n - 1
        assert tree.memory_bytes() < before  # memory reclaimed

    def test_delete_root_repeatedly(self):
        rng = random.Random(8)
        tree = BucketKDTree(dims=2)
        points = [
            (rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(200)
        ]
        points = list(dict.fromkeys(points))
        for p in points:
            tree.put(p)
        # Remove whatever sits at the root, every time.
        while tree._root is not None:
            victim = tree._root.point
            tree.remove(victim)
            full_invariant(tree._root, 0, 2)
        assert len(tree) == 0

    def test_invariant_after_random_mutations(self):
        rng = random.Random(12)
        tree = BucketKDTree(dims=3)
        alive = {}
        for step in range(500):
            if rng.random() < 0.6 or not alive:
                p = tuple(round(rng.uniform(0, 1), 3) for _ in range(3))
                tree.put(p, step)
                alive[p] = step
            else:
                p = rng.choice(sorted(alive))
                assert tree.remove(p) == alive.pop(p)
            if step % 50 == 0:
                assert full_invariant(tree._root, 0, 3) == len(alive)
        # Everything still findable.
        for p, v in alive.items():
            assert tree.get(p) == v

    def test_duplicate_axis_values(self):
        """Ties along split axes are the classic kD-tree deletion trap."""
        tree = BucketKDTree(dims=2)
        points = [
            (1.0, 1.0),
            (1.0, 2.0),
            (1.0, 0.0),
            (2.0, 1.0),
            (0.0, 1.0),
            (1.0, 3.0),
        ]
        for p in points:
            tree.put(p)
        for p in points:
            tree.remove(p)
            full_invariant(tree._root, 0, 2)
            assert not tree.contains(p)
        assert len(tree) == 0


class TestValidation:
    def test_remove_missing(self):
        tree = BucketKDTree(dims=2)
        tree.put((1.0, 1.0))
        with pytest.raises(KeyError):
            tree.remove((2.0, 2.0))
        assert len(tree) == 1

    def test_dimension_check(self):
        tree = BucketKDTree(dims=2)
        with pytest.raises(ValueError):
            tree.contains((1.0, 2.0, 3.0))
