"""Tests for the naive array layouts and their paper-formula memory."""

from __future__ import annotations

import pytest

from repro.baselines.naive import ObjectArray, PlainArray
from repro.memory.model import JvmMemoryModel


class TestPaperFormulas:
    """Paper Section 4.3.5: double[] needs k*8*n bytes, object[] needs
    (k*8 + 16 + 4)*n bytes."""

    @pytest.mark.parametrize("dims", [2, 3, 5, 10, 15])
    def test_plain_array_formula(self, dims):
        index = PlainArray(dims=dims)
        n = 100
        for i in range(n):
            index.put(tuple(float(i + d) for d in range(dims)))
        model = JvmMemoryModel.compressed_oops()
        expected = dims * 8 * n
        # Allow the single array header + alignment.
        assert abs(index.memory_bytes(model) - expected) <= 24

    @pytest.mark.parametrize("dims", [2, 3, 5, 10, 15])
    def test_object_array_formula(self, dims):
        index = ObjectArray(dims=dims)
        n = 100
        for i in range(n):
            index.put(tuple(float(i + d) for d in range(dims)))
        model = JvmMemoryModel.compressed_oops()
        expected = (dims * 8 + 16 + 4) * n
        assert abs(index.memory_bytes(model) - expected) <= 24

    def test_paper_table1_exact_values(self):
        # Table 1: d[] = 24 and o[] = 44 bytes/entry for 3D entries.
        for cls, expected in ((PlainArray, 24), (ObjectArray, 44)):
            index = cls(dims=3)
            for i in range(1000):
                index.put((float(i), float(i) / 2, float(i) / 3))
            assert index.bytes_per_entry() == pytest.approx(
                expected, abs=0.5
            )


class TestScanSemantics:
    def test_duplicate_put_updates(self):
        index = PlainArray(dims=2)
        index.put((1.0, 2.0), "a")
        assert index.put((1.0, 2.0), "b") == "a"
        assert len(index) == 1

    def test_query_is_linear_scan_but_correct(self):
        index = ObjectArray(dims=2)
        for i in range(50):
            index.put((float(i), float(i)))
        got = sorted(p for p, _ in index.query((10.0, 10.0), (20.0, 20.0)))
        assert got == [(float(i), float(i)) for i in range(10, 21)]

    def test_knn_is_exact(self):
        index = PlainArray(dims=1)
        for i in range(10):
            index.put((float(i),))
        got = [p[0] for p, _ in index.knn((4.2,), 3)]
        assert got == [4.0, 5.0, 3.0]

    def test_remove_missing(self):
        index = PlainArray(dims=2)
        with pytest.raises(KeyError):
            index.remove((9.0, 9.0))
