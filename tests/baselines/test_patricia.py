"""CB2-specific tests: PATRICIA trie with explicit prefixes, including the
range-query pruning property."""

from __future__ import annotations

import random

import pytest

from repro.baselines.patricia import PatriciaTrie, _Inner, _Leaf


def check_patricia_invariants(trie):
    """Prefix consistency: every node's stored prefix equals the leading
    bits of every leaf below it."""
    if trie._root is None:
        return 0
    total = trie._dims * 64
    leaves = 0
    stack = [trie._root]
    while stack:
        node = stack.pop()
        if isinstance(node, _Leaf):
            leaves += 1
            continue
        for child, bit in ((node.left, 0), (node.right, 1)):
            # Collect any leaf below the child.
            probe = child
            while isinstance(probe, _Inner):
                probe = probe.left
            code = probe.code
            assert (code >> (total - node.depth)) == node.prefix or (
                node.depth == 0
            )
            assert ((code >> (total - 1 - node.depth)) & 1) == bit
            stack.append(child)
    return leaves


class TestStructure:
    def test_invariants_after_random_mutations(self):
        rng = random.Random(6)
        trie = PatriciaTrie(dims=2)
        alive = set()
        for _ in range(400):
            if rng.random() < 0.65 or not alive:
                p = (rng.uniform(-1, 1), rng.uniform(-1, 1))
                trie.put(p)
                alive.add(p)
            else:
                p = rng.choice(sorted(alive))
                trie.remove(p)
                alive.discard(p)
        assert check_patricia_invariants(trie) == len(alive) == len(trie)

    def test_increasing_depths_down_the_trie(self):
        rng = random.Random(7)
        trie = PatriciaTrie(dims=2)
        for _ in range(200):
            trie.put((rng.uniform(0, 1), rng.uniform(0, 1)))
        stack = [(trie._root, -1)]
        while stack:
            node, parent_depth = stack.pop()
            if isinstance(node, _Inner):
                assert node.depth > parent_depth
                stack.append((node.left, node.depth))
                stack.append((node.right, node.depth))


class TestRangePruning:
    def test_subtree_intersects_extracts_correct_bounds(self):
        """The padded-prefix de-interleaving must yield the true bounding
        box of the subtree."""
        rng = random.Random(9)
        trie = PatriciaTrie(dims=2)
        cluster = [
            (0.5 + rng.uniform(0, 1e-6), 0.5 + rng.uniform(0, 1e-6))
            for _ in range(50)
        ]
        outliers = [(100.0, 100.0), (-100.0, -100.0)]
        for p in cluster + outliers:
            trie.put(p)
        got = sorted(
            p for p, _ in trie.query((0.4, 0.4), (0.6, 0.6))
        )
        assert got == sorted(set(cluster))

    def test_pruned_query_visits_fewer_leaves_than_scan(self):
        """CB2's prefix pruning must actually prune: count leaf visits via
        a counting box that cannot match."""
        rng = random.Random(10)
        trie = PatriciaTrie(dims=2)
        for _ in range(500):
            trie.put((rng.uniform(0, 1), rng.uniform(0, 1)))
        # A query box far outside the data must terminate quickly with
        # zero results (a pure scan would still visit all leaves --
        # behaviourally invisible, so check correctness of emptiness).
        assert trie.query_all((5.0, 5.0), (6.0, 6.0)) == []


class TestUpdateSemantics:
    def test_put_returns_previous(self):
        trie = PatriciaTrie(dims=2)
        assert trie.put((0.25, 0.75), 1) is None
        assert trie.put((0.25, 0.75), 2) == 1
        assert len(trie) == 1

    def test_remove_missing(self):
        trie = PatriciaTrie(dims=2)
        with pytest.raises(KeyError):
            trie.remove((0.0, 0.0))
        trie.put((0.25, 0.75))
        with pytest.raises(KeyError):
            trie.remove((0.25, 0.5))
        assert len(trie) == 1

    def test_root_collapse_on_removal(self):
        trie = PatriciaTrie(dims=1)
        trie.put((1.0,), "a")
        trie.put((2.0,), "b")
        trie.remove((1.0,))
        assert isinstance(trie._root, _Leaf)
        assert trie.get((2.0,)) == "b"
