"""QT-specific tests: bucket splitting, domain handling, node explosion
versus the PH-tree (the paper's §2 argument)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.quadtree import BUCKET_CAPACITY, QuadTree


class TestBasics:
    def test_lifecycle_against_oracle(self):
        rng = random.Random(1)
        tree = QuadTree(dims=2)
        oracle = {}
        pts = [
            (rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(500)
        ]
        for i, p in enumerate(pts):
            tree.put(p, i)
            oracle[p] = i
        assert len(tree) == len(oracle)
        for p in list(oracle)[:100]:
            assert tree.get(p) == oracle[p]
        for _ in range(15):
            lo = (rng.uniform(0, 0.7), rng.uniform(0, 0.7))
            hi = (lo[0] + 0.3, lo[1] + 0.3)
            got = sorted(p for p, _ in tree.query(lo, hi))
            want = sorted(
                p
                for p in oracle
                if lo[0] <= p[0] <= hi[0] and lo[1] <= p[1] <= hi[1]
            )
            assert got == want
        for p in list(oracle)[:200]:
            assert tree.remove(p) == oracle.pop(p)
        assert len(tree) == len(oracle)

    def test_domain_enforced(self):
        tree = QuadTree(dims=2, domain=(0.0, 1.0))
        with pytest.raises(ValueError):
            tree.put((1.5, 0.5))
        with pytest.raises(ValueError):
            tree.put((-0.1, 0.5))

    def test_custom_domain(self):
        tree = QuadTree(dims=2, domain=(-200.0, 200.0))
        tree.put((-125.0, 45.0), "tiger-ish")
        assert tree.get((-125.0, 45.0)) == "tiger-ish"

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            QuadTree(dims=2, domain=(1.0, 1.0))

    def test_remove_missing(self):
        tree = QuadTree(dims=1)
        with pytest.raises(KeyError):
            tree.remove((0.5,))

    def test_duplicate_put_updates(self):
        tree = QuadTree(dims=1)
        tree.put((0.5,), "a")
        assert tree.put((0.5,), "b") == "a"
        assert len(tree) == 1


class TestSplitting:
    def test_bucket_splits_on_overflow(self):
        tree = QuadTree(dims=2)
        for i in range(BUCKET_CAPACITY + 1):
            # Spread over all quadrants so the split distributes.
            tree.put((0.1 + 0.2 * (i % 4), 0.1 + 0.2 * (i % 3)))
        assert tree.cell_count > 1

    def test_pathological_cluster_bounded_by_max_depth(self):
        """Adversarially close points force deep chains; MAX_DEPTH stops
        the recursion (the bucket then simply grows)."""
        rng = random.Random(2)
        tree = QuadTree(dims=2)
        points = set()
        while len(points) < 3 * BUCKET_CAPACITY:
            points.add(
                (0.5 + rng.uniform(0, 1e-13), 0.5 + rng.uniform(0, 1e-13))
            )
        for p in points:
            tree.put(p)
        assert len(tree) == len(points)
        got = list(tree.query((0.4, 0.4), (0.6, 0.6)))
        assert len(got) == len(points)


class TestPaperSection2Argument:
    def test_quadtree_needs_more_memory_than_ph_on_skewed_data(self):
        """§2: quadtrees 'tend to require a lot of memory'; the PH-tree
        counters this with prefix sharing + bit-streams.  Verify the
        modelled footprints on clustered data."""
        from repro.baselines import make_index
        from repro.datasets import generate_cluster

        points = generate_cluster(4000, 3, offset=0.4, seed=3)
        ph = make_index("PH", dims=3)
        # CLUSTER x-coordinates can dip a hair below 0: pad the domain.
        qt = QuadTree(dims=3, domain=(-0.01, 1.01))
        for p in points:
            ph.put(p)
            qt.put(p)
        assert ph.bytes_per_entry() < qt.bytes_per_entry()

    def test_chains_of_single_child_cells_on_clusters(self):
        """No path compression: descending into a tight cluster creates
        chains of single-child cells.  The PH-tree provably has none
        (every non-root node holds >= 2 slots -- its PATRICIA infix
        collapses such chains into one hop)."""
        from repro.baselines import make_index
        from repro.datasets import generate_cluster

        points = generate_cluster(1000, 2, offset=0.4, seed=4)
        qt = QuadTree(dims=2, domain=(-0.01, 1.01))
        ph = make_index("PH", dims=2)
        for p in points:
            qt.put(p)
            ph.put(p)
        # Count interior cells with exactly one child and no points.
        chains = 0
        stack = [qt._root]
        while stack:
            cell = stack.pop()
            if cell.children is None:
                continue
            children = [c for c in cell.children if c is not None]
            if len(children) == 1 and not cell.bucket:
                chains += 1
            stack.extend(children)
        assert chains > 0
        for node in ph.tree.int_tree.nodes():
            if node is not ph.tree.int_tree.root:
                assert node.num_slots() >= 2
