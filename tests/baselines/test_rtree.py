"""RT-specific tests: Guttman invariants under adversarial mutations."""

from __future__ import annotations

import random

import pytest

from repro.baselines.rtree import MAX_ENTRIES, MIN_ENTRIES, RTree


class TestStructure:
    def test_invariants_after_bulk_insert(self):
        rng = random.Random(1)
        tree = RTree(dims=2)
        for _ in range(500):
            tree.put((rng.uniform(0, 1), rng.uniform(0, 1)))
        tree.check_invariants()

    def test_invariants_under_interleaved_mutations(self):
        rng = random.Random(2)
        tree = RTree(dims=3)
        alive = {}
        for step in range(800):
            if rng.random() < 0.6 or not alive:
                p = tuple(round(rng.uniform(0, 1), 4) for _ in range(3))
                tree.put(p, step)
                alive[p] = step
            else:
                p = rng.choice(sorted(alive))
                assert tree.remove(p) == alive.pop(p)
            if step % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(alive)

    def test_root_split_grows_height(self):
        tree = RTree(dims=1)
        for i in range(MAX_ENTRIES + 1):
            tree.put((float(i),))
        assert not tree._root.leaf  # root split happened
        tree.check_invariants()

    def test_delete_to_empty_and_reuse(self):
        tree = RTree(dims=2)
        points = [(float(i), float(i % 3)) for i in range(40)]
        for p in points:
            tree.put(p)
        for p in points:
            tree.remove(p)
        assert len(tree) == 0
        tree.put((1.0, 1.0), "back")
        assert tree.get((1.0, 1.0)) == "back"
        tree.check_invariants()

    def test_duplicate_put_updates_in_place(self):
        tree = RTree(dims=2)
        tree.put((0.5, 0.5), "a")
        assert tree.put((0.5, 0.5), "b") == "a"
        assert len(tree) == 1

    def test_remove_missing(self):
        tree = RTree(dims=2)
        tree.put((0.5, 0.5))
        with pytest.raises(KeyError):
            tree.remove((0.4, 0.4))


class TestClusteredData:
    def test_identical_axis_values(self):
        """Degenerate MBRs (all points on a line) must still split."""
        tree = RTree(dims=2)
        for i in range(100):
            tree.put((0.5, float(i)))
        tree.check_invariants()
        got = sorted(p for p, _ in tree.query((0.5, 10.0), (0.5, 20.0)))
        assert got == [(0.5, float(i)) for i in range(10, 21)]

    def test_tight_cluster(self):
        rng = random.Random(3)
        tree = RTree(dims=2)
        pts = {
            (0.5 + rng.uniform(0, 1e-9), 0.5 + rng.uniform(0, 1e-9))
            for _ in range(200)
        }
        for p in pts:
            tree.put(p)
        assert len(tree) == len(pts)
        got = sorted(p for p, _ in tree.query((0.4, 0.4), (0.6, 0.6)))
        assert got == sorted(pts)


class TestFillBounds:
    def test_constants_sane(self):
        assert 2 <= MIN_ENTRIES <= MAX_ENTRIES // 2
