"""Tests for the benchmark CLI."""

from __future__ import annotations

import pytest

from repro.bench.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "tab4" in out

    def test_single_experiment(self, capsys):
        assert main(["-e", "tab4", "-s", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tab4" in out
        assert "done in" in out

    def test_unknown_experiment(self, capsys):
        assert main(["-e", "fig99", "-s", "tiny"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["-e", "tab4", "-s", "galactic"])

    def test_output_files(self, tmp_path, capsys):
        assert main(["-e", "tab4", "-s", "tiny", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "tab4.txt").exists()
        assert (tmp_path / "tab4.csv").exists()
        assert "Table 4" in (tmp_path / "tab4.txt").read_text()
