"""CLI chart emission and report file contents."""

from __future__ import annotations

import pytest

from repro.bench.cli import main


class TestChartOutput:
    def test_series_experiments_write_charts(self, tmp_path, capsys):
        assert main(["-e", "tab2", "-s", "tiny", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        chart = tmp_path / "tab2.chart.txt"
        assert chart.exists()
        text = chart.read_text()
        assert "PH-CLUSTER0.4" in text
        assert "entries" in text
        assert "|" in text  # the y-axis

    def test_text_experiments_skip_charts(self, tmp_path, capsys):
        assert main(["-e", "tab4", "-s", "tiny", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "tab4.txt").exists()
        assert not (tmp_path / "tab4.chart.txt").exists()

    def test_csv_is_parseable_by_compare(self, tmp_path, capsys):
        from repro.bench.compare import load_csv_series

        assert main(["-e", "tab2", "-s", "tiny", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        series = load_csv_series(tmp_path / "tab2.csv")
        assert "PH-CLUSTER0.4" in series
        assert all(
            y > 0 for _, y in series["PH-CLUSTER0.4"]
        )

    def test_round_trip_compare_is_unity(self, tmp_path, capsys):
        """An experiment compared against itself reports 1.000x."""
        from repro.bench.compare import (
            compare_directories,
        )

        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert main(["-e", "tab2", "-s", "tiny", "-o", str(out_a)]) == 0
        assert main(["-e", "tab2", "-s", "tiny", "-o", str(out_b)]) == 0
        capsys.readouterr()
        rows = compare_directories(out_a, out_b)
        assert rows
        for _, _, ratio in rows:
            assert ratio == pytest.approx(1.0)
