"""Tests for the result-comparison tool."""

from __future__ import annotations

import math

import pytest

from repro.bench.compare import (
    compare_directories,
    format_report,
    load_csv_series,
    main,
)


@pytest.fixture
def result_dirs(tmp_path):
    before = tmp_path / "before"
    after = tmp_path / "after"
    before.mkdir()
    after.mkdir()
    (before / "fig7a.csv").write_text(
        "entries,PH,KD1\n1000,10.0,5.0\n2000,12.0,6.0\n"
    )
    (after / "fig7a.csv").write_text(
        "entries,PH,KD1\n1000,5.0,5.0\n2000,6.0,6.0\n"
    )
    (before / "only_before.csv").write_text("x,A\n1,1.0\n")
    (after / "only_after.csv").write_text("x,B\n1,1.0\n")
    return before, after


class TestLoadCsv:
    def test_parses_series(self, result_dirs):
        before, _ = result_dirs
        series = load_csv_series(before / "fig7a.csv")
        assert series["PH"] == [(1000.0, 10.0), (2000.0, 12.0)]
        assert series["KD1"] == [(1000.0, 5.0), (2000.0, 6.0)]

    def test_nan_cells(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("x,A\n1,nan\n2,3.0\n")
        series = load_csv_series(path)
        assert math.isnan(series["A"][0][1])
        assert series["A"][1] == (2.0, 3.0)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert load_csv_series(path) == {}


class TestCompare:
    def test_ratios(self, result_dirs):
        rows = compare_directories(*result_dirs)
        by_series = {(e, s): r for e, s, r in rows}
        assert by_series[("fig7a", "PH")] == pytest.approx(0.5)
        assert by_series[("fig7a", "KD1")] == pytest.approx(1.0)

    def test_unmatched_files_skipped(self, result_dirs):
        rows = compare_directories(*result_dirs)
        experiments = {e for e, _, _ in rows}
        assert experiments == {"fig7a"}

    def test_format_report(self, result_dirs):
        rows = compare_directories(*result_dirs)
        text = format_report(rows)
        assert "fig7a" in text
        assert "0.500x" in text

    def test_threshold_hides_unchanged(self, result_dirs):
        rows = compare_directories(*result_dirs)
        text = format_report(rows, threshold=0.1)
        assert "PH" in text
        assert "KD1" not in text


class TestCli:
    def test_main(self, result_dirs, capsys):
        before, after = result_dirs
        assert main([str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out

    def test_bad_directory(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), str(tmp_path)]) == 2
        assert "not a directory" in capsys.readouterr().err
