"""Consistency checks across the experiment registry: every module's
EXP_ID matches its registry key, docstrings reference their paper
anchors, and scales are honoured."""

from __future__ import annotations

import importlib

import pytest

from repro.bench.experiments import REGISTRY


@pytest.mark.parametrize("exp_id", sorted(REGISTRY))
class TestRegistryConsistency:
    def test_exp_id_matches_module_constant(self, exp_id):
        module = importlib.import_module(REGISTRY[exp_id].__module__)
        assert getattr(module, "EXP_ID") == exp_id

    def test_docstring_names_its_paper_anchor(self, exp_id):
        module = importlib.import_module(REGISTRY[exp_id].__module__)
        doc = module.__doc__ or ""
        if exp_id.startswith("fig"):
            assert f"Figure {exp_id[3:]}" in doc
        elif exp_id.startswith("tab"):
            assert f"Table {exp_id[3:]}" in doc
        elif exp_id == "unload":
            assert "4.3.4" in doc
        else:
            assert "Ablation" in doc or "ablation" in doc

    def test_run_signature_takes_scale(self, exp_id):
        import inspect

        run = REGISTRY[exp_id]
        parameters = list(inspect.signature(run).parameters)
        assert parameters[:1] == ["scale_name"]


class TestResultIdsUnique:
    def test_tiny_result_ids_do_not_collide(self):
        """Two experiments writing the same result file would silently
        clobber each other's reports."""
        from repro.bench.experiments import run_experiment

        seen = {}
        for exp_id in ("tab1", "tab2", "tab4", "fig10"):
            for result in run_experiment(exp_id, "tiny"):
                assert result.exp_id not in seen, (
                    result.exp_id,
                    seen[result.exp_id] if result.exp_id in seen else "",
                )
                seen[result.exp_id] = exp_id
