"""Smoke tests: every registered experiment must run at tiny scale and
produce well-formed results."""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import REGISTRY, run_experiment

# The heavier experiments are exercised by `pytest benchmarks/`; here we
# only check the cheap ones end-to-end and the registry contract for all.
CHEAP = ["tab1", "tab2", "tab4", "fig10", "fig12", "ablation_hc"]


class TestRegistry:
    def test_expected_experiments_registered(self):
        expected = {
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "tab1", "tab2", "tab3", "tab4", "unload",
            "ablation_hc", "ablation_masks", "ablation_chunks",
            "ablation_storage", "ablation_sam",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", "tiny")


@pytest.mark.parametrize("exp_id", CHEAP)
class TestCheapExperimentsRun:
    def test_runs_and_formats(self, exp_id):
        results = run_experiment(exp_id, "tiny")
        assert results
        for result in results:
            text = result.format_table()
            assert result.exp_id in text
            csv = result.to_csv()
            assert csv


class TestTab4Exactness:
    def test_matches_paper(self):
        (result,) = run_experiment("tab4", "tiny")
        assert "match the paper's Table 4 exactly" in result.text


class TestTab2Shape:
    def test_cluster05_starts_above_cluster04(self):
        (result,) = run_experiment("tab2", "tiny")
        c04 = result.get("PH-CLUSTER0.4").ys
        c05 = result.get("PH-CLUSTER0.5").ys
        assert all(not math.isnan(y) for y in c04 + c05)
        # At the smallest n, the 0.5 offset costs extra space.
        assert c05[0] > c04[0]
