"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import math

import pytest

from repro.bench.plotting import render_chart
from repro.bench.runner import ExperimentResult, Series


def make_result(series_data, title="demo", x_label="n"):
    result = ExperimentResult("exp", title, x_label, "us")
    for label, pairs in series_data.items():
        series = Series(label=label)
        for x, y in pairs:
            series.add(x, y)
        result.series.append(series)
    return result


class TestRenderChart:
    def test_contains_title_and_legend(self):
        result = make_result({"PH": [(1, 1.0), (10, 2.0)]})
        chart = render_chart(result)
        assert "demo" in chart
        assert "o PH" in chart
        assert "linear" in chart

    def test_plots_all_series_with_distinct_glyphs(self):
        result = make_result(
            {
                "PH": [(1, 1.0), (10, 2.0)],
                "KD1": [(1, 5.0), (10, 6.0)],
            }
        )
        chart = render_chart(result)
        assert "o" in chart
        assert "x KD1" in chart

    def test_log_scale_autoselects(self):
        result = make_result({"PH": [(1, 0.1), (10, 1000.0)]})
        chart = render_chart(result)
        assert "log10" in chart

    def test_log_scale_forced_off(self):
        result = make_result({"PH": [(1, 0.1), (10, 1000.0)]})
        chart = render_chart(result, log_y=False)
        assert "linear" in chart

    def test_nan_values_skipped(self):
        result = make_result(
            {"PH": [(1, float("nan")), (5, 2.0), (10, 3.0)]}
        )
        chart = render_chart(result)
        assert "demo" in chart

    def test_all_nan_reports_no_data(self):
        result = make_result({"PH": [(1, float("nan"))]})
        assert "no finite data" in render_chart(result)

    def test_single_point(self):
        result = make_result({"PH": [(5, 5.0)]})
        chart = render_chart(result)
        assert chart.count("o") >= 1

    def test_dimensions_respected(self):
        result = make_result({"PH": [(1, 1.0), (10, 2.0)]})
        chart = render_chart(result, width=32, height=8)
        body_lines = [
            line for line in chart.splitlines() if "|" in line
        ]
        assert len(body_lines) == 8

    def test_too_small_rejected(self):
        result = make_result({"PH": [(1, 1.0)]})
        with pytest.raises(ValueError):
            render_chart(result, width=4, height=2)

    def test_axis_labels_present(self):
        result = make_result(
            {"PH": [(100, 1.0), (10000, 2.0)]}, x_label="entries"
        )
        chart = render_chart(result)
        assert "entries" in chart
        assert "100" in chart
        assert "10000" in chart

    def test_monotone_series_renders_monotone(self):
        """Glyph rows must descend left-to-right for increasing data."""
        result = make_result(
            {"PH": [(i, float(i)) for i in range(1, 9)]}
        )
        chart = render_chart(result, width=32, height=10)
        rows = [
            (line_no, line.index("o"))
            for line_no, line in enumerate(chart.splitlines())
            if "o" in line and "|" in line
        ]
        # Increasing data: larger values sit on upper lines (smaller line
        # numbers) and righter columns, so columns descend down the rows.
        columns = [col for _, col in rows]
        assert columns == sorted(columns, reverse=True)
