"""Tests for the benchmark drivers (with minimal workloads)."""

from __future__ import annotations

import math

import pytest

from repro.bench.runner import (
    ExperimentResult,
    Series,
    TextResult,
    load_index,
    run_insertion_sweep,
    run_k_sweep,
    run_point_query_sweep,
    run_range_query_sweep,
    run_unload_sweep,
)
from repro.datasets import generate_cube


class TestSeriesAndResult:
    def test_series_add(self):
        s = Series(label="PH")
        s.add(1, 2.0)
        s.add(10, 3.0)
        assert s.xs == [1, 10]
        assert s.ys == [2.0, 3.0]

    def test_result_get(self):
        result = ExperimentResult("x", "t", "n", "us")
        result.series.append(Series(label="PH"))
        assert result.get("PH").label == "PH"
        with pytest.raises(KeyError):
            result.get("KD1")

    def test_format_table(self):
        result = ExperimentResult("fig0", "demo", "entries", "us")
        s = Series(label="PH")
        s.add(100, 1.5)
        result.series.append(s)
        result.notes.append("a note")
        text = result.format_table()
        assert "fig0" in text
        assert "a note" in text
        assert "PH" in text
        assert "100" in text

    def test_format_empty(self):
        result = ExperimentResult("fig0", "demo", "x", "y")
        assert "(no data)" in result.format_table()

    def test_to_csv(self):
        result = ExperimentResult("fig0", "demo", "entries", "us")
        s = Series(label="PH")
        s.add(100, 1.5)
        result.series.append(s)
        csv = result.to_csv()
        assert csv.splitlines()[0] == "entries,PH"
        assert csv.splitlines()[1] == "100,1.5"

    def test_text_result(self):
        r = TextResult("tab0", "demo", "hello")
        assert "hello" in r.format_table()
        assert r.to_csv().startswith("hello")


class TestLoadIndex:
    def test_loads_everything(self):
        points = generate_cube(200, 2, seed=1)
        index, seconds = load_index("PH", 2, points)
        assert len(index) == len(set(points))
        assert seconds > 0


class TestDrivers:
    N_VALUES = (50, 100)

    def test_insertion_sweep(self):
        result = run_insertion_sweep(
            "t", "t", "CUBE", 2, ("PH", "KD1"), self.N_VALUES
        )
        assert len(result.series) == 2
        for series in result.series:
            assert series.xs == list(self.N_VALUES)
            assert all(y > 0 for y in series.ys)

    def test_point_query_sweep(self):
        result = run_point_query_sweep(
            "t", "t", "CUBE", 2, ("PH",), self.N_VALUES, n_queries=50
        )
        assert all(y > 0 for y in result.get("PH").ys)

    def test_range_query_sweep(self):
        result = run_range_query_sweep(
            "t", "t", "CUBE", 2, ("PH",), (200, 400), n_queries=10
        )
        ys = result.get("PH").ys
        assert all(y > 0 or math.isnan(y) for y in ys)

    def test_unload_sweep(self):
        result = run_unload_sweep(
            "t", "t", "CUBE", 2, ("PH", "KD2"), self.N_VALUES
        )
        for series in result.series:
            assert all(y > 0 for y in series.ys)

    def test_k_sweep_metrics(self):
        for metric in ("insert", "bytes_per_entry", "node_count"):
            result = run_k_sweep(
                "t",
                "t",
                [("PH", "CUBE")],
                (2, 3),
                n=100,
                metric=metric,
                n_queries=10,
            )
            assert result.get("PH-CUBE").xs == [2, 3]

    def test_k_sweep_unknown_metric(self):
        with pytest.raises(ValueError):
            run_k_sweep("t", "t", [("PH", "CUBE")], (2,), 10, "warp")

    def test_k_sweep_node_count_requires_ph(self):
        with pytest.raises(ValueError):
            run_k_sweep(
                "t", "t", [("KD1", "CUBE")], (2,), 10, "node_count"
            )
