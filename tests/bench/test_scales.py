"""Tests for the scale definitions."""

from __future__ import annotations

import pytest

from repro.bench.scales import SCALES, get_scale


class TestScales:
    def test_all_scales_present(self):
        assert set(SCALES) == {"tiny", "small", "medium", "paper"}

    def test_get_scale(self):
        assert get_scale("tiny").name == "tiny"
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_scales_are_ordered(self):
        tiny = get_scale("tiny")
        small = get_scale("small")
        medium = get_scale("medium")
        paper = get_scale("paper")
        assert max(tiny.n_sweep) < max(small.n_sweep)
        assert max(small.n_sweep) < max(medium.n_sweep)
        assert max(medium.n_sweep) < max(paper.n_sweep)
        assert tiny.n_point_queries <= small.n_point_queries

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert max(paper.n_sweep) == 100_000_000  # Fig 7b/8b/9b reach 1e8
        assert paper.n_fixed == 10_000_000  # Sections 4.3.7 sweeps
        assert paper.n_point_queries == 1_000_000  # Section 4.3.2
        assert paper.repeats == 3  # "executed three times"
        assert max(paper.k_sweep_space) == 15
        assert max(paper.k_sweep_perf) == 10

    def test_n_sweeps_sorted(self):
        for scale in SCALES.values():
            assert list(scale.n_sweep) == sorted(scale.n_sweep)
