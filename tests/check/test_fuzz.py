"""The model-based differential fuzzer: smoke runs across shapes,
determinism, the reference model itself, and the shrinker."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.check import FuzzConfig, FuzzFailure, replay, run_fuzz
from repro.check.fuzz import generate_ops
from repro.check.model import ReferenceModel
from repro.core.arena_tree import ArenaPHTree


# ---------------------------------------------------------------------------
# The reference model is itself correct (vs brute force).
# ---------------------------------------------------------------------------


def test_model_matches_brute_force():
    rng = random.Random(99)
    model = ReferenceModel(dims=2, width=8)
    shadow = {}
    for _ in range(300):
        key = (rng.randrange(256), rng.randrange(256))
        if rng.random() < 0.7 or key not in shadow:
            value = rng.randrange(1000)
            model.put(key, value)
            shadow[key] = value
        else:
            model.remove(key)
            del shadow[key]
    assert dict(model.items()) == shadow
    lo, hi = (30, 40), (200, 180)
    expected = {
        k: v
        for k, v in shadow.items()
        if all(a <= c <= b for a, c, b in zip(lo, k, hi))
    }
    assert dict(model.query(lo, hi)) == expected


def test_model_query_inverted_box_empty():
    model = ReferenceModel(dims=2, width=8)
    model.put((5, 5), 1)
    assert model.query((10, 0), (0, 10)) == []


def test_model_knn_ordering():
    model = ReferenceModel(dims=1, width=8)
    for x in (10, 20, 30, 40):
        model.put((x,), x)
    assert [k for k, _ in model.knn((22,), 2)] == [(20,), (30,)]


def test_model_update_key_contract():
    model = ReferenceModel(dims=1, width=8)
    model.put((1,), "a")
    model.put((2,), "b")
    with pytest.raises(ValueError):
        model.update_key((1,), (2,))  # target occupied
    with pytest.raises(KeyError):
        model.update_key((9,), (3,))  # source missing
    model.update_key((1,), (1,))  # no-op on identical present key
    model.update_key((1,), (5,))
    assert model.get((5,)) == "a" and not model.contains((1,))


# ---------------------------------------------------------------------------
# Fuzz smoke runs.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "dims,width", [(1, 8), (2, 16), (6, 16), (14, 16), (3, 64)]
)
def test_fuzz_smoke(dims, width):
    report = run_fuzz(
        FuzzConfig(dims=dims, width=width, ops=400, seed=dims * 1000 + width)
    )
    assert report.ops_run == 400


def test_fuzz_cluster_distribution():
    report = run_fuzz(
        FuzzConfig(dims=4, width=32, ops=400, seed=5, distribution="cluster")
    )
    assert report.ops_run == 400


def test_fuzz_durable_mode():
    """Durable mode folds a DurablePHTree into the lockstep: random
    flush/compact/close-and-reopen get interleaved and the reopened
    store must stay bit-identical to the reference model."""
    config = FuzzConfig(
        dims=2, width=16, ops=400, seed=33, durable=True, learned=True
    )
    ops = generate_ops(config)
    kinds = {op[0] for op in ops}
    assert kinds >= {"d_flush", "d_reopen", "d_compact"}
    report = run_fuzz(config)
    assert report.ops_run == 400


def test_fuzz_durable_repro_names_the_flag():
    from repro.check.fuzz import FuzzFailure as Failure

    failure = Failure(
        config=FuzzConfig(dims=2, width=16, ops=10, seed=1, durable=True),
        ops=[("put", (1, 1), 2)],
        index=0,
        subject="durable",
        message="boom",
    )
    assert "durable=True" in failure.repro()


@pytest.mark.parametrize("obs_mode", ["on", "off"])
def test_fuzz_fixed_obs_modes(obs_mode):
    run_fuzz(FuzzConfig(dims=2, width=16, ops=200, seed=8, obs_mode=obs_mode))


def test_generate_ops_deterministic():
    config = FuzzConfig(dims=3, width=16, ops=500, seed=1234)
    assert generate_ops(config) == generate_ops(config)


def test_generate_ops_covers_every_kind():
    ops = generate_ops(FuzzConfig(dims=2, width=16, ops=3000, seed=2))
    kinds = {op[0] for op in ops}
    assert kinds >= {
        "put",
        "get",
        "contains",
        "remove",
        "update_key",
        "query",
        "query_approx",
        "get_many",
        "knn",
        "bulk_load",
    }


def test_replay_runs_explicit_ops():
    config = FuzzConfig(dims=2, width=8, ops=1, seed=0, shards=2)
    replay(
        [
            ("put", (1, 2), 10),
            ("put", (3, 4), 11),
            ("get", (1, 2)),
            ("query", (0, 0), (255, 255)),
            ("remove", (1, 2)),
            ("knn", (3, 3), 1),
        ],
        config,
    )


# ---------------------------------------------------------------------------
# Failure detection and shrinking: a deliberately broken engine must be
# caught, and the shrunk repro must be small and replayable.
# ---------------------------------------------------------------------------


def test_fuzz_catches_planted_bug(monkeypatch):
    # Sabotage both storage engines (ArenaPHTree overrides contains, so
    # patching the base class alone would leave arena trees honest).
    for cls in (PHTree, ArenaPHTree):
        original = cls.__dict__["contains"]

        def lying_contains(self, key, _original=original):
            result = _original(self, key)
            if result and sum(key) % 7 == 0:
                return False  # lie occasionally
            return result

        monkeypatch.setattr(cls, "contains", lying_contains)
    with pytest.raises(FuzzFailure) as excinfo:
        run_fuzz(FuzzConfig(dims=2, width=8, ops=2000, seed=3, shards=2))
    failure = excinfo.value
    # Shrinking keeps the failure reproducible and small.
    assert 0 < len(failure.ops) <= 25
    assert "replay(" in failure.repro()
    assert "FuzzConfig(" in failure.repro()


def test_fuzz_catches_dropped_write(monkeypatch):
    for cls in (PHTree, ArenaPHTree):
        original = cls.__dict__["put"]

        def flaky_put(self, key, value=None, _original=original):
            if (
                isinstance(key, tuple)
                and sum(key) % 13 == 0
                and len(self) > 5
            ):
                return None  # silently drop the write
            return _original(self, key, value)

        monkeypatch.setattr(cls, "put", flaky_put)
    with pytest.raises(FuzzFailure):
        run_fuzz(
            FuzzConfig(
                dims=2, width=8, ops=2000, seed=4, shards=2, shrink=False
            )
        )


def test_config_rejects_bad_shapes():
    with pytest.raises(ValueError):
        FuzzConfig(dims=0)
    with pytest.raises(ValueError):
        FuzzConfig(dims=17)
    with pytest.raises(ValueError):
        FuzzConfig(width=4)
    with pytest.raises(ValueError):
        FuzzConfig(width=128)
    with pytest.raises(ValueError):
        FuzzConfig(obs_mode="sometimes")


# ---------------------------------------------------------------------------
# Flight-recorder dump on divergence (PR 8).
# ---------------------------------------------------------------------------


def test_fuzz_failure_carries_flight_recorder_tail(monkeypatch):
    from repro.obs import recorder as recorder_mod

    recorder_mod.clear()
    # Sabotage the *model* so the first get diverges on every engine;
    # the generator never calls model.get, so op generation is intact.
    monkeypatch.setattr(
        ReferenceModel, "get", lambda self, key, default=None: "wrong"
    )
    with pytest.raises(FuzzFailure) as excinfo:
        run_fuzz(
            FuzzConfig(dims=2, width=8, ops=200, seed=5, shrink=False)
        )
    failure = excinfo.value
    # The black box travelled with the failure...
    assert failure.events
    kinds = [event[2] for event in failure.events]
    assert "fuzz_op" in kinds
    # ...and is rendered into the failure message for the operator.
    assert "flight recorder" in str(failure)
    recorder_mod.clear()


def test_fuzz_records_ops_into_the_recorder():
    from repro.obs import recorder as recorder_mod

    recorder_mod.clear()
    run_fuzz(FuzzConfig(dims=2, width=8, ops=60, seed=6))
    kinds = {event[2] for event in recorder_mod.dump()}
    assert "fuzz_op" in kinds
    recorder_mod.clear()
