"""The structural invariant validator: accepts every tree the suite
builds, rejects every seeded corruption."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, PHTreeF
from repro.check import InvariantViolation, validate_tree
from repro.core.bulk import bulk_load
from repro.core.concurrent import SynchronizedPHTree
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.serialize import U64ValueCodec
from repro.parallel import ShardedPHTree


def _filled(dims=3, width=16, n=300, seed=7, value=None, layout=None):
    rng = random.Random(seed)
    tree = PHTree(dims=dims, width=width, layout=layout)
    for i in range(n):
        key = tuple(rng.randrange(1 << width) for _ in range(dims))
        tree.put(key, i if value is None else value)
    return tree


# ---------------------------------------------------------------------------
# Acceptance: every construction path the suite uses validates clean.
# ---------------------------------------------------------------------------


def test_accepts_empty_tree():
    report = validate_tree(PHTree(dims=2, width=8))
    assert report.entries == 0
    assert report.nodes == 0


def test_accepts_single_entry():
    tree = PHTree(dims=2, width=8)
    tree.put((3, 5), "x")
    report = validate_tree(tree)
    assert report.entries == 1


def test_accepts_small_tree_fixture(small_tree):
    tree, reference = small_tree
    report = validate_tree(tree)
    assert report.entries == len(reference)
    assert report.engine in ("PHTree", "ArenaPHTree")


def test_accepts_float_facade(small_float_tree):
    tree, reference = small_float_tree
    report = validate_tree(tree)
    assert report.entries == len(reference)


@pytest.mark.parametrize("dims", [1, 2, 6, 14])
def test_accepts_incremental_and_bulk(dims):
    rng = random.Random(dims)
    width = 16
    items = {
        tuple(rng.randrange(1 << width) for _ in range(dims)): i
        for i in range(200)
    }
    incremental = PHTree(dims=dims, width=width)
    for key, value in items.items():
        incremental.put(key, value)
    bulk = bulk_load(list(items.items()), dims, width=width)
    assert validate_tree(incremental).entries == len(items)
    assert validate_tree(bulk).entries == len(items)


@pytest.mark.parametrize("hc_mode", ["hc", "lhc", "auto"])
def test_accepts_forced_container_modes(hc_mode):
    rng = random.Random(11)
    tree = PHTree(dims=2, width=12, hc_mode=hc_mode)
    for i in range(150):
        tree.put((rng.randrange(1 << 12), rng.randrange(1 << 12)), i)
    report = validate_tree(tree)
    if hc_mode == "hc":
        assert report.lhc_nodes == 0
    if hc_mode == "lhc":
        assert report.hc_nodes == 0


def test_accepts_hysteresis_band():
    rng = random.Random(13)
    tree = PHTree(dims=3, width=10, hc_hysteresis=0.5)
    for i in range(200):
        tree.put(
            tuple(rng.randrange(1 << 10) for _ in range(3)), i
        )
    for key in list(dict(tree.items()))[:100]:
        tree.remove(key)
    validate_tree(tree)


def test_accepts_after_heavy_deletes():
    tree = _filled(n=400, seed=3)
    keys = [key for key, _ in tree.items()]
    rng = random.Random(5)
    rng.shuffle(keys)
    for key in keys[:350]:
        tree.remove(key)
        if len(tree) % 50 == 0:
            validate_tree(tree)
    validate_tree(tree)


def test_accepts_frozen_tree():
    tree = _filled(value=None)
    for key, _ in list(tree.items()):
        tree.put(key, None)
    frozen = FrozenPHTree(freeze(tree))
    report = validate_tree(frozen)
    assert report.engine == "FrozenPHTree"
    assert report.entries == len(tree)


def test_accepts_frozen_u64_codec():
    tree = _filled()
    frozen = FrozenPHTree(freeze(tree, U64ValueCodec), U64ValueCodec)
    assert validate_tree(frozen).entries == len(tree)


def test_accepts_synchronized_tree():
    tree = SynchronizedPHTree(_filled())
    report = validate_tree(tree)
    # The inner engine name depends on the layout in use.
    assert report.engine in (
        "Synchronized[PHTree]",
        "Synchronized[ArenaPHTree]",
    )


def test_accepts_sharded_tree():
    rng = random.Random(17)
    items = [
        (tuple(rng.randrange(1 << 16) for _ in range(2)), i)
        for i in range(300)
    ]
    with ShardedPHTree.build(
        items, dims=2, width=16, shards=4, workers=0
    ) as sharded:
        report = validate_tree(sharded)
    assert report.engine == "ShardedPHTree"
    assert report.entries == len(dict(items))
    assert len(report.sub_reports) == 4


def test_accepts_per_dimension_widths():
    rng = random.Random(19)
    tree = PHTree(dims=3, width=[8, 16, 12])
    for i in range(150):
        tree.put(
            (
                rng.randrange(1 << 8),
                rng.randrange(1 << 16),
                rng.randrange(1 << 12),
            ),
            i,
        )
    validate_tree(tree)


# ---------------------------------------------------------------------------
# Rejection: seeded corruptions must be caught.
# ---------------------------------------------------------------------------


def _first_internal(tree):
    """Some node holding at least one child node, else any node."""
    stack = [tree.root]
    fallback = tree.root
    while stack:
        node = stack.pop()
        for _, slot in node.items():
            if hasattr(slot, "post_len"):
                stack.append(slot)
                return node, slot
    return fallback, None


def test_rejects_corrupt_size():
    tree = _filled()
    tree._size += 1
    with pytest.raises(InvariantViolation, match="size"):
        validate_tree(tree)


def test_rejects_corrupt_prefix():
    # Corrupting live Node objects needs the object engine (the arena
    # engine only hands out disposable shadows); the arena twins below
    # corrupt the slabs instead.
    tree = _filled(layout="object")
    parent, child = _first_internal(tree)
    assert child is not None
    child.prefix = tuple(p ^ 1 for p in child.prefix)
    with pytest.raises(InvariantViolation):
        validate_tree(tree)


def test_rejects_single_child_non_root():
    tree = _filled(n=500, seed=23, layout="object")
    parent, child = _first_internal(tree)
    assert child is not None
    # Strip the child down to one slot behind the tree's back.
    address, slot = next(iter(child.items()))
    for other_address, _ in list(child.items()):
        if other_address != address:
            child.remove_slot(other_address, tree.dims)
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_rejects_wrong_post_len():
    tree = _filled(layout="object")
    parent, child = _first_internal(tree)
    assert child is not None
    child.post_len = parent.post_len  # must be strictly smaller
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_rejects_out_of_range_key_entry():
    tree = PHTree(dims=2, width=8)
    tree.put((3, 5), "a")
    tree.put((200, 17), "b")
    # Narrow the declared widths after the fact: (200, ...) is now out
    # of range for dimension 0.
    tree._widths = (6, 8)
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_violation_carries_path():
    tree = _filled()
    tree._size += 1
    try:
        validate_tree(tree)
    except InvariantViolation as violation:
        assert isinstance(violation.path, tuple)
    else:  # pragma: no cover
        pytest.fail("expected InvariantViolation")


# ---------------------------------------------------------------------------
# Arena-native rejection: corruption planted straight into the slabs.
# ---------------------------------------------------------------------------


def test_arena_accepts_clean_tree():
    report = validate_tree(_filled(layout="arena"))
    assert report.engine == "ArenaPHTree"
    assert report.entries == 300


def test_arena_rejects_corrupt_header_counts():
    tree = _filled(layout="arena")
    # Inflate the root counts word's n_post field (bits 21..41).
    tree._arena.words[tree._root_off + 1] += 1 << 21
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_arena_rejects_corrupt_prefix():
    tree = _filled(layout="arena")
    arena = tree._arena
    # Set a dirty bit below post_len + 1 in some non-root node's prefix.
    for off in arena.iter_nodes(tree._root_off):
        if off != tree._root_off:
            arena.words[off + 2] ^= 1
            break
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_arena_rejects_reachable_freed_block():
    tree = _filled(layout="arena")
    arena = tree._arena
    # Recycle a still-reachable node block behind the tree's back.
    victim = next(
        off
        for off in arena.iter_nodes(tree._root_off)
        if off != tree._root_off
    )
    arena.free_block(victim, arena.block_len(victim))
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_arena_rejects_lost_free_list_marker():
    tree = _filled(layout="arena")
    arena = tree._arena
    # Deletes create free blocks; smash one list head's marker word.
    for key, _ in list(tree.items())[:150]:
        tree.remove(key)
    heads = [head for head in arena.node_free.values() if head]
    assert heads, "delete churn should have freed node blocks"
    arena.words[heads[0]] ^= 1
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)


def test_arena_rejects_accounting_drift():
    tree = _filled(layout="arena")
    tree._arena.live_entries += 1
    with pytest.raises(InvariantViolation):
        validate_tree(tree, frozen_roundtrip=False)
