"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, PHTreeF


@pytest.fixture
def rng():
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_tree():
    """A 3D/16-bit PH-tree with a deterministic random content."""
    rng = random.Random(42)
    tree = PHTree(dims=3, width=16)
    reference = {}
    for _ in range(500):
        key = tuple(rng.randrange(1 << 16) for _ in range(3))
        value = rng.randrange(1000)
        tree.put(key, value)
        reference[key] = value
    return tree, reference


@pytest.fixture
def small_float_tree():
    """A 2D float PH-tree with deterministic uniform content."""
    rng = random.Random(43)
    tree = PHTreeF(dims=2)
    reference = {}
    for _ in range(400):
        key = (rng.uniform(-10, 10), rng.uniform(-10, 10))
        value = rng.randrange(1000)
        tree.put(key, value)
        reference[key] = value
    return tree, reference


def random_key(rng: random.Random, dims: int, width: int):
    """A uniform random integer key."""
    return tuple(rng.randrange(1 << width) for _ in range(dims))


def brute_force_range(reference, box_min, box_max):
    """Reference result of a range query over a key->value dict."""
    return sorted(
        key
        for key in reference
        if all(lo <= v <= hi for v, lo, hi in zip(key, box_min, box_max))
    )
