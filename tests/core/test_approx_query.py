"""Focused tests for the approximate range query (reference [17])."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree
from repro.datasets import generate_cluster
from repro.encoding.ieee import encode_point


def clustered_tree(width=16, n=600, seed=5):
    rng = random.Random(seed)
    tree = PHTree(dims=2, width=width)
    reference = set()
    for centre in (0x1000, 0x8000, 0xF000):
        for _ in range(n // 3):
            key = (
                centre + rng.randrange(64),
                centre + rng.randrange(64),
            )
            tree.put(key)
            reference.add(key)
    return tree, reference


class TestSemantics:
    def test_superset_property_on_clustered_data(self):
        tree, reference = clustered_tree()
        lo, hi = (0x1000, 0x1000), (0x1020, 0x1020)
        exact = {k for k, _ in tree.query(lo, hi)}
        for slack in (1, 3, 5):
            approx = {k for k, _ in tree.query_approx(lo, hi, slack)}
            assert exact <= approx
            tolerance = (1 << slack) - 1
            for key in approx:
                assert all(
                    l - tolerance <= v <= h + tolerance
                    for v, l, h in zip(key, lo, hi)
                )

    def test_slack_grows_monotonically(self):
        """Larger slack can only add points, never drop them."""
        tree, _ = clustered_tree()
        lo, hi = (0x8000, 0x8000), (0x8030, 0x8030)
        previous = set()
        for slack in (0, 1, 2, 4, 8):
            current = {
                k for k, _ in tree.query_approx(lo, hi, slack)
            }
            assert previous <= current
            previous = current

    def test_whole_domain_equals_exact(self):
        tree, reference = clustered_tree()
        top = (1 << 16) - 1
        approx = {
            k for k, _ in tree.query_approx((0, 0), (top, top), 8)
        }
        assert approx == reference

    def test_empty_tree_and_empty_box(self):
        tree = PHTree(dims=2, width=8)
        assert list(tree.query_approx((0, 0), (255, 255), 3)) == []
        tree.put((5, 5))
        assert list(tree.query_approx((9, 9), (1, 1), 3)) == []

    @given(st.integers(min_value=0, max_value=8), st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_bounded_error(self, slack, data):
        keys = data.draw(
            st.lists(
                st.tuples(st.integers(0, 255), st.integers(0, 255)),
                max_size=50,
                unique=True,
            )
        )
        tree = PHTree(dims=2, width=8)
        for key in keys:
            tree.put(key)
        lo = (data.draw(st.integers(0, 255)),
              data.draw(st.integers(0, 255)))
        hi = (data.draw(st.integers(lo[0], 255)),
              data.draw(st.integers(lo[1], 255)))
        exact = {k for k, _ in tree.query(lo, hi)}
        approx = {k for k, _ in tree.query_approx(lo, hi, slack)}
        assert exact <= approx
        tolerance = (1 << slack) - 1
        for key in approx - exact:
            assert all(
                l - tolerance <= v <= h + tolerance
                for v, l, h in zip(key, lo, hi)
            )


class TestNodeVisitSavings:
    def test_approx_visits_fewer_or_equal_slots(self):
        """The point of [17]: skipping fine-grained nodes near the edges
        reduces work on dense data.  Measure yielded-entry supersets as
        the observable effect and ensure no blow-up."""
        points = generate_cluster(3000, 2, offset=0.4, seed=9)
        tree = PHTree(dims=2, width=64)
        for p in points:
            tree.put(encode_point(p))
        lo = encode_point((0.0, 0.39))
        hi = encode_point((0.2, 0.41))
        exact = sum(1 for _ in tree.query(lo, hi))
        approx = sum(1 for _ in tree.query_approx(lo, hi, 16))
        assert approx >= exact
        # With 16 slack bits on 64-bit coords the tolerance is tiny in
        # float terms: no more than the cluster's own population joins.
        assert approx <= exact * 2 + 100
