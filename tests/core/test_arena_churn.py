"""Delete-heavy churn against the arena engine: the per-size-class
free lists must bound slab growth (no leak across insert/delete
cycles), and the structure surviving churn must match the object
engine node-for-node."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.check import validate_tree
from repro.core.stats import collect_stats

WIDTH = 16


def _keys(rng, dims, n):
    return list(
        {tuple(rng.randrange(1 << WIDTH) for _ in range(dims)) for _ in range(n)}
    )


@pytest.mark.parametrize("dims", [2, 3, 8])
def test_repeated_fill_drain_reuses_slabs(dims):
    """Identical fill/drain cycles after the first must be served
    entirely from the free lists: zero capacity growth."""
    tree = PHTree(dims=dims, width=WIDTH, layout="arena")
    arena = tree._arena
    keys = _keys(random.Random(dims), dims, 400)
    caps = []
    for cycle in range(5):
        for i, key in enumerate(keys):
            tree.put(key, i)
        for key in keys:
            tree.remove(key)
        assert len(tree) == 0
        caps.append(arena.capacity_bytes())
    # Cycle 0 grows the slab to the workload's high-water mark; every
    # later cycle replays the same allocation sequence against full
    # free lists, so the frontier must not move again.
    assert caps[1:] == [caps[0]] * (len(caps) - 1)
    # Everything is recycled: no live nodes or entries remain, and the
    # freed blocks are walkable with intact markers.
    assert arena.n_nodes == 0
    assert arena.live_entries == 0
    freed = arena.free_block_offsets()
    assert freed, "drain should have populated the node free lists"
    all_offsets = [off for offs in freed.values() for off in offs]
    assert len(all_offsets) == len(set(all_offsets))


@pytest.mark.parametrize("dims", [2, 6])
def test_rolling_churn_capacity_plateaus(dims):
    """A rolling window of fresh random keys (steady-state size, heavy
    turnover) must plateau: free-listed blocks serve later cycles, so
    capacity after many cycles stays near the early high-water mark."""
    rng = random.Random(100 + dims)
    tree = PHTree(dims=dims, width=WIDTH, layout="arena")
    arena = tree._arena
    live = []
    caps = []
    for cycle in range(8):
        for key in _keys(rng, dims, 250):
            tree.put(key, cycle)
            live.append(key)
        rng.shuffle(live)
        while len(live) > 250:
            tree.remove(live.pop())
        caps.append(arena.capacity_bytes())
    # Growth after the warm-up cycles must be marginal -- a leak (freed
    # blocks never reused) would instead grow capacity every cycle.
    assert caps[-1] <= caps[1] * 1.5
    validate_tree(tree)


@pytest.mark.parametrize("dims", [2, 3, 8])
def test_post_churn_structure_matches_object_engine(dims):
    """After identical churn, the arena tree's node census must equal
    the object engine's exactly (same tree, different storage)."""
    surviving = {}
    trees = {}
    for layout in ("object", "arena"):
        rng = random.Random(dims * 7)
        tree = PHTree(dims=dims, width=WIDTH, layout=layout)
        keys = _keys(rng, dims, 500)
        for i, key in enumerate(keys):
            tree.put(key, i)
        rng.shuffle(keys)
        for key in keys[:350]:
            tree.remove(key)
        surviving[layout] = dict(tree.items())
        trees[layout] = tree
    assert surviving["arena"] == surviving["object"]
    stats = {
        layout: collect_stats(tree) for layout, tree in trees.items()
    }
    for field in ("n_entries", "n_nodes", "n_hc_nodes", "n_lhc_nodes",
                  "max_depth", "total_infix_bits"):
        assert getattr(stats["arena"], field) == getattr(
            stats["object"], field
        ), field
    # The arena's own node accounting agrees with the walk.
    arena = trees["arena"]._arena
    assert arena.n_nodes == stats["arena"].n_nodes
    assert arena.live_entries == stats["arena"].n_entries
    validate_tree(trees["arena"])
