"""Arena-native specialized kernels: parity with the object engine for
window scans, batched point lookups, kNN and deletes; plan-cache
invalidation under mutation; the query_many sequential cutover; the
freeze() slab fast path; and the arena-by-default layout flip."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, obs
from repro.core.batch import QUERY_MANY_SEQ_CUTOVER
from repro.core.frozen import freeze
from repro.core.serialize import U64ValueCodec
from repro.obs import probes

WIDTH = 16


@pytest.fixture
def obs_enabled():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


def _keys(rng, dims, n, width=WIDTH):
    return list(
        {
            tuple(rng.randrange(1 << width) for _ in range(dims))
            for _ in range(n)
        }
    )


def _pair(dims, n=600, seed=None):
    """An (object, arena) tree pair with identical contents."""
    rng = random.Random(seed if seed is not None else dims)
    keys = _keys(rng, dims, n)
    obj = PHTree(dims=dims, width=WIDTH, layout="object")
    arena = PHTree(dims=dims, width=WIDTH, layout="arena")
    for i, key in enumerate(keys):
        obj.put(key, i)
        arena.put(key, i)
    return obj, arena, keys, rng


def _boxes(rng, dims, n=40):
    out = []
    for _ in range(n):
        a = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
        b = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
        out.append(
            (
                tuple(min(x, y) for x, y in zip(a, b)),
                tuple(max(x, y) for x, y in zip(a, b)),
            )
        )
    return out


class TestRangeScanParity:
    @pytest.mark.parametrize("dims", [1, 2, 3, 6])
    def test_plain_matches_object_engine(self, dims):
        obj, arena, _, rng = _pair(dims)
        for lo, hi in _boxes(rng, dims):
            assert list(arena.query(lo, hi)) == list(obj.query(lo, hi))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_instrumented_matches_plain(self, dims, obs_enabled):
        obj, arena, _, rng = _pair(dims)
        boxes = _boxes(rng, dims)
        expected = [list(obj.query(lo, hi)) for lo, hi in boxes]
        got = [list(arena.query(lo, hi)) for lo, hi in boxes]
        assert got == expected
        assert probes.kernel_nodes_visited.value > 0
        assert probes.kernel_entries_yielded.value >= sum(
            len(r) for r in expected
        )

    @pytest.mark.parametrize("slack", [1, 3, 6])
    def test_query_approx_superset(self, slack):
        obj, arena, _, rng = _pair(3)
        for lo, hi in _boxes(rng, 3, n=15):
            exact = dict(obj.query(lo, hi))
            approx = dict(arena.query_approx(lo, hi, slack))
            assert set(exact) <= set(approx)
            pad = (1 << slack) - 1
            for key in approx:
                assert all(
                    max(0, l - pad) <= v <= h + pad
                    for v, l, h in zip(key, lo, hi)
                )


class TestGetManyParity:
    @pytest.mark.parametrize("dims", [1, 2, 3, 6])
    def test_hits_and_misses(self, dims):
        obj, arena, keys, rng = _pair(dims)
        probe = keys[::3] + _keys(rng, dims, 100)
        rng.shuffle(probe)
        assert arena.get_many(probe) == obj.get_many(probe)
        assert arena.contains_many(probe) == obj.contains_many(probe)

    def test_default_value(self):
        _, arena, keys, rng = _pair(3)
        missing = [k for k in _keys(rng, 3, 50) if k not in set(keys)]
        out = arena.get_many(missing, default="absent")
        assert out == ["absent"] * len(missing)


class TestArenaRemove:
    @pytest.mark.parametrize("dims", [1, 2, 3, 6])
    def test_interleaved_remove_reinsert(self, dims):
        obj, arena, keys, rng = _pair(dims)
        rng.shuffle(keys)
        half = keys[: len(keys) // 2]
        for key in half:
            assert arena.remove(key) == obj.remove(key)
        assert len(arena) == len(obj)
        for i, key in enumerate(half[::2]):
            obj.put(key, -i)
            arena.put(key, -i)
        for lo, hi in _boxes(rng, dims, n=10):
            assert list(arena.query(lo, hi)) == list(obj.query(lo, hi))

    def test_miss_raises_and_default(self):
        _, arena, keys, rng = _pair(2)
        present = set(keys)
        miss = next(
            k for k in iter(lambda: tuple(
                rng.randrange(1 << WIDTH) for _ in range(2)
            ), None) if k not in present
        )
        with pytest.raises(KeyError):
            arena.remove(miss)
        assert arena.remove(miss, None) is None
        assert arena.remove(miss, "gone") == "gone"
        assert len(arena) == len(keys)

    def test_drain_to_empty(self):
        _, arena, keys, _ = _pair(3, n=300)
        for key in keys:
            arena.remove(key)
        assert len(arena) == 0
        assert list(arena.items()) == []


class TestKnnParity:
    @pytest.mark.parametrize("dims", [2, 3, 6])
    def test_matches_object_engine(self, dims):
        obj, arena, _, rng = _pair(dims)
        for _ in range(25):
            q = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
            n = rng.randrange(1, 12)
            assert arena.knn(q, n) == obj.knn(q, n)


class TestPlanCacheInvalidation:
    def test_mutation_invalidates_cached_plans(self):
        """A scan after put/remove must see the new structure, not a
        stale cached slot window."""
        obj, arena, keys, rng = _pair(3, n=200)
        full = (0,) * 3, ((1 << WIDTH) - 1,) * 3
        assert list(arena.query(*full)) == list(obj.query(*full))
        # Mutate through every path that can reshape nodes.
        fresh = _keys(rng, 3, 200, width=WIDTH)
        for i, key in enumerate(fresh):
            obj.put(key, 1000 + i)
            arena.put(key, 1000 + i)
        assert list(arena.query(*full)) == list(obj.query(*full))
        for key in keys[::2]:
            obj.remove(key)
            arena.remove(key)
        assert list(arena.query(*full)) == list(obj.query(*full))
        probe = keys + fresh
        assert arena.get_many(probe) == obj.get_many(probe)

    def test_epoch_bumps_on_mutators(self):
        tree = PHTree(dims=2, width=WIDTH, layout="arena")
        inner = tree._tree if hasattr(tree, "_tree") else tree
        e0 = inner._mut_epoch
        tree.put((1, 2), "a")
        assert inner._mut_epoch > e0
        e1 = inner._mut_epoch
        tree.remove((1, 2))
        assert inner._mut_epoch > e1
        e2 = inner._mut_epoch
        tree.clear()
        assert inner._mut_epoch > e2


class TestQueryManyCutover:
    def test_small_batch_matches_shared_walk(self):
        obj, arena, _, rng = _pair(3)
        small = _boxes(rng, 3, n=16)
        assert len(small) <= QUERY_MANY_SEQ_CUTOVER
        per_box = [list(obj.query(lo, hi)) for lo, hi in small]
        assert obj.query_many(small) == per_box
        assert arena.query_many(small) == per_box

    def test_large_batch_above_cutover(self):
        obj, arena, _, rng = _pair(2, n=250)
        big = _boxes(rng, 2, n=QUERY_MANY_SEQ_CUTOVER + 8)
        assert obj.query_many(big) == arena.query_many(big)

    def test_inverted_box_yields_empty(self):
        _, arena, _, _ = _pair(2, n=50)
        boxes = [((5, 5), (3, 3)), ((0, 0), ((1 << WIDTH) - 1,) * 2)]
        out = arena.query_many(boxes)
        assert out[0] == []
        assert len(out[1]) == 50


class TestFreezeFastPath:
    def test_probe_ticks_and_stream_bit_identical(self, obs_enabled):
        """Satellite 2: freeze() on an arena tree must take the
        straight-from-slab transcription (probe ticks) and produce the
        exact byte stream the object engine writes."""
        obj, arena, _, _ = _pair(3, n=400)
        before = probes.freeze_arena_fast.value
        frozen_arena = freeze(arena, U64ValueCodec())
        assert probes.freeze_arena_fast.value == before + 1
        frozen_obj = freeze(obj, U64ValueCodec())
        assert frozen_arena == frozen_obj

    def test_fast_path_after_churn(self, obs_enabled):
        obj, arena, keys, rng = _pair(2, n=300)
        for key in keys[::2]:
            obj.remove(key)
            arena.remove(key)
        extra = _keys(rng, 2, 100)
        for i, key in enumerate(extra):
            obj.put(key, i)
            arena.put(key, i)
        before = probes.freeze_arena_fast.value
        assert freeze(arena, U64ValueCodec()) == freeze(
            obj, U64ValueCodec()
        )
        assert probes.freeze_arena_fast.value == before + 1


class TestDefaultLayout:
    def test_default_is_arena(self, monkeypatch):
        monkeypatch.delenv("REPRO_PHTREE_LAYOUT", raising=False)
        assert PHTree(dims=3, width=WIDTH).layout == "arena"

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHTREE_LAYOUT", "object")
        assert PHTree(dims=3, width=WIDTH).layout == "object"

    def test_wide_keys_fall_back_to_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_PHTREE_LAYOUT", raising=False)
        assert PHTree(dims=2, width=80).layout == "object"
