"""Batch engine correctness: ``get_many``/``contains_many``/``query_many``
must agree exactly with the sequential API on randomized CUBE/CLUSTER
data across dimensionalities and both container forks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree
from repro.core.batch import z_sort_key
from repro.datasets.cluster import generate_cluster
from repro.datasets.cube import generate_cube

WIDTH = 16


def _int_keys(points, width=WIDTH):
    scale = 1 << width
    return [
        tuple(
            min(max(int(v * scale), 0), scale - 1) for v in point
        )
        for point in points
    ]


def _build(keys, dims, hc_mode):
    tree = PHTree(dims=dims, width=WIDTH, hc_mode=hc_mode)
    for i, key in enumerate(keys):
        tree.put(key, i)
    return tree


def _dataset(kind, n, dims, seed):
    if kind == "cube":
        return _int_keys(generate_cube(n, dims, seed=seed))
    return _int_keys(generate_cluster(n, dims, seed=seed))


# dims=14 with forced HC materialises 2**14-slot arrays per node; keep
# those trees small so the fork stays cheap to exercise.
def _n_for(dims, hc_mode):
    return 120 if (dims == 14 and hc_mode == "hc") else 400


DIMS = [2, 6, 14]
HC_MODES = ["hc", "lhc"]


class TestGetMany:
    @pytest.mark.parametrize("dims", DIMS)
    @pytest.mark.parametrize("hc_mode", HC_MODES)
    @pytest.mark.parametrize("kind", ["cube", "cluster"])
    def test_matches_sequential_get(self, dims, hc_mode, kind):
        rng = random.Random(dims * 7 + (hc_mode == "hc"))
        n = _n_for(dims, hc_mode)
        keys = _dataset(kind, n, dims, seed=dims)
        tree = _build(keys, dims, hc_mode)
        # Hits, misses, duplicates -- in shuffled (non-z) order.
        probes = keys + [
            tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
            for _ in range(n // 2)
        ]
        probes += probes[: n // 4]
        rng.shuffle(probes)
        expected = [tree.get(k) for k in probes]
        assert tree.get_many(probes) == expected
        assert tree.contains_many(probes) == [
            tree.contains(k) for k in probes
        ]

    @pytest.mark.parametrize("hc_mode", HC_MODES)
    def test_presorted_flag(self, hc_mode):
        keys = _dataset("cube", 300, 3, seed=9)
        tree = _build(keys, 3, hc_mode)
        probes = sorted(set(keys), key=z_sort_key(3, WIDTH))
        expected = [tree.get(k) for k in probes]
        assert tree.get_many(probes, presorted=True) == expected
        # presorted is a hint, not a contract: any order stays correct.
        random.Random(1).shuffle(probes)
        assert tree.get_many(probes, presorted=True) == [
            tree.get(k) for k in probes
        ]

    def test_default_and_empty(self):
        tree = PHTree(dims=2, width=8)
        assert tree.get_many([(1, 2), (3, 4)]) == [None, None]
        assert tree.get_many([(1, 2)], default=-1) == [-1]
        assert tree.get_many([]) == []
        tree.put((1, 2), "v")
        assert tree.get_many([(1, 2), (2, 1)], default=0) == ["v", 0]

    def test_validation_matches_sequential_api(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2))
        for bad in [(1,), (1, 2, 3), (256, 0), (-1, 0), ("a", 0)]:
            try:
                tree.get(bad)
            except Exception as exc:
                seq_type, seq_msg = type(exc), str(exc)
            else:  # pragma: no cover - every probe above is invalid
                pytest.fail(f"sequential get accepted {bad!r}")
            with pytest.raises(seq_type) as info:
                tree.get_many([(1, 2), bad])
            assert str(info.value) == seq_msg

    @given(st.data())
    @settings(max_examples=30)
    def test_property_random_batches(self, data):
        keys = data.draw(
            st.lists(
                st.tuples(st.integers(0, 255), st.integers(0, 255)),
                max_size=50,
            )
        )
        probes = data.draw(
            st.lists(
                st.tuples(st.integers(0, 255), st.integers(0, 255)),
                max_size=50,
            )
        )
        tree = PHTree(dims=2, width=8)
        for i, key in enumerate(keys):
            tree.put(key, i)
        batch = keys + probes
        assert tree.get_many(batch) == [tree.get(k) for k in batch]


class TestQueryMany:
    @pytest.mark.parametrize("dims", DIMS)
    @pytest.mark.parametrize("hc_mode", HC_MODES)
    @pytest.mark.parametrize("kind", ["cube", "cluster"])
    def test_matches_sequential_query(self, dims, hc_mode, kind):
        rng = random.Random(dims * 13 + (hc_mode == "hc"))
        n = _n_for(dims, hc_mode)
        keys = _dataset(kind, n, dims, seed=dims + 50)
        tree = _build(keys, dims, hc_mode)
        boxes = []
        for _ in range(12):
            lo = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
            hi = tuple(
                min(v + rng.randrange(1 << 14), (1 << WIDTH) - 1)
                for v in lo
            )
            boxes.append((lo, hi))
        # A stored key as a point box, and an inverted (empty) box.
        point = keys[0]
        boxes.append((point, point))
        boxes.append((((1 << WIDTH) - 1,) * dims, (0,) * dims))
        expected = [list(tree.query(lo, hi)) for lo, hi in boxes]
        # Exact equality: same entries in the same (z-)order per box.
        assert tree.query_many(boxes) == expected

    def test_full_domain_box(self, small_tree):
        tree, reference = small_tree
        top = ((1 << 16) - 1,) * 3
        (got,) = tree.query_many([((0, 0, 0), top)])
        assert got == list(tree.query((0, 0, 0), top))
        assert len(got) == len(reference)

    def test_empty_batch_and_empty_tree(self):
        tree = PHTree(dims=2, width=8)
        assert tree.query_many([]) == []
        assert tree.query_many([((0, 0), (255, 255))]) == [[]]

    def test_overlapping_boxes_share_entries(self):
        tree = PHTree(dims=2, width=8)
        for x in range(16):
            for y in range(16):
                tree.put((x, y), x * 16 + y)
        boxes = [
            ((0, 0), (15, 15)),
            ((4, 4), (11, 11)),
            ((4, 4), (11, 11)),
            ((8, 0), (8, 15)),
        ]
        assert tree.query_many(boxes) == [
            list(tree.query(lo, hi)) for lo, hi in boxes
        ]

    def test_validation(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(ValueError):
            tree.query_many([((0,), (255, 255))])
        with pytest.raises(ValueError):
            tree.query_many([((0, 0), (256, 255))])
