"""Tests for bulk loading: must build the identical canonical tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree, bulk_load
from repro.core.serialize import serialize_tree


class TestBasics:
    def test_empty(self):
        tree = bulk_load([], dims=2, width=8)
        assert len(tree) == 0
        tree.check_invariants()

    def test_single(self):
        tree = bulk_load([((3, 4), "v")], dims=2, width=8)
        assert tree.get((3, 4)) == "v"
        tree.check_invariants()

    def test_duplicates_last_wins(self):
        tree = bulk_load(
            [((1, 1), "first"), ((1, 1), "second")], dims=2, width=8
        )
        assert len(tree) == 1
        assert tree.get((1, 1)) == "second"

    def test_validation(self):
        with pytest.raises(ValueError):
            bulk_load([((256, 0), None)], dims=2, width=8)

    def test_per_dimension_widths(self):
        tree = bulk_load(
            [((1, 1000), None)], dims=2, width=(2, 12)
        )
        assert tree.contains((1, 1000))

    def test_forced_hc_mode(self):
        tree = bulk_load(
            [((x, y), None) for x in range(2) for y in range(2)],
            dims=2,
            width=8,
            hc_mode="lhc",
        )
        for node in tree.nodes():
            assert not node.container.is_hc


class TestCanonicalEquivalence:
    def test_matches_incremental_build(self):
        rng = random.Random(5)
        entries = {
            tuple(rng.randrange(1 << 16) for _ in range(3)): None
            for _ in range(3000)
        }
        incremental = PHTree(dims=3, width=16)
        for key in entries:
            incremental.put(key)
        bulk = bulk_load(
            [(k, None) for k in entries], dims=3, width=16
        )
        bulk.check_invariants()
        assert serialize_tree(bulk) == serialize_tree(incremental)

    def test_clustered_keys(self):
        rng = random.Random(6)
        base = 0xAB00
        entries = {
            (base | rng.randrange(64), base | rng.randrange(64)): None
            for _ in range(300)
        }
        incremental = PHTree(dims=2, width=16)
        for key in entries:
            incremental.put(key)
        bulk = bulk_load([(k, None) for k in entries], dims=2, width=16)
        assert serialize_tree(bulk) == serialize_tree(incremental)

    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 255)),
            max_size=80,
        )
    )
    @settings(max_examples=40)
    def test_property_canonical(self, keys):
        incremental = PHTree(dims=2, width=8)
        for key in keys:
            incremental.put(key)
        bulk = bulk_load([(k, None) for k in keys], dims=2, width=8)
        bulk.check_invariants()
        assert serialize_tree(bulk) == serialize_tree(incremental)

    def test_bulk_tree_is_mutable_afterwards(self):
        bulk = bulk_load(
            [((i, i), i) for i in range(100)], dims=2, width=8
        )
        bulk.put((200, 200), "new")
        bulk.remove((0, 0))
        bulk.check_invariants()
        assert len(bulk) == 100


class TestAdversarialShapes:
    def test_power_of_two_worst_case(self):
        # The paper's Figure 4b key set.
        keys = [(0,), (1,), (2,), (4,), (8,)]
        bulk = bulk_load([(k, None) for k in keys], dims=1, width=4)
        incremental = PHTree(dims=1, width=4)
        for key in keys:
            incremental.put(key)
        assert serialize_tree(bulk) == serialize_tree(incremental)

    def test_full_boolean_cube(self):
        keys = [
            (a, b, c)
            for a in range(2)
            for b in range(2)
            for c in range(2)
        ]
        bulk = bulk_load([(k, None) for k in keys], dims=3, width=1)
        assert len(bulk) == 8
        bulk.check_invariants()
