"""ReadWriteLock fairness/re-entrancy regressions and concurrent stress
on the synchronized and sharded trees.

The lock-level tests pin the two ISSUE-2 fixes:

- *bounded writer batching*: sustained write load can no longer starve
  readers -- after ``max_writer_batch`` consecutive writers pass while
  readers wait, the reader cohort gets a turn;
- *re-entrant read acquisition*: a thread already in shared mode may
  re-acquire freely even with a writer queued (previously a deadlock).

The stress tests interleave reader/writer threads over
``SynchronizedPHTree`` and ``ShardedPHTree`` and compare the final
state (and, for snapshots, every intermediate read) against a plain
single-threaded ``PHTree`` oracle.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import PHTree
from repro.core.concurrent import ReadWriteLock, SynchronizedPHTree
from repro.parallel import ShardedPHTree


class TestReaderStarvation:
    def test_readers_progress_under_sustained_write_load(self):
        """With writers queuing back-to-back, a reader must still get
        in after at most ``max_writer_batch`` writer passes."""
        lock = ReadWriteLock(max_writer_batch=4)
        stop = threading.Event()
        writes_before_read = []
        writes_done = [0]

        def writer_loop():
            while not stop.is_set():
                with lock.write():
                    writes_done[0] += 1

        writers = [threading.Thread(target=writer_loop) for _ in range(3)]
        for t in writers:
            t.start()
        try:
            # Let the write storm establish itself.
            deadline = time.time() + 5
            while writes_done[0] < 10 and time.time() < deadline:
                time.sleep(0.001)
            assert writes_done[0] >= 10
            # A sample counts writer passes between snapshotting the
            # counter and being admitted -- but passes landing before
            # the reader even registers as waiting are outside the
            # batching bound, so a noisy sample is re-taken instead of
            # failing outright.  True starvation exceeds the bound on
            # every retry.
            for _ in range(5):
                for attempt in range(4):
                    before = writes_done[0]
                    with lock.read():
                        seen = writes_done[0] - before
                    if seen <= 16:
                        break
                writes_before_read.append(seen)
        finally:
            stop.set()
            for t in writers:
                t.join(timeout=5)
        # The reader was admitted; under the bound it never waited for
        # an unbounded writer stream (generous slack over the batch of 4
        # to absorb scheduling noise).
        assert all(seen <= 16 for seen in writes_before_read), (
            writes_before_read
        )

    def test_writer_preference_still_holds_below_the_bound(self):
        """A single waiting writer still beats newly arriving readers
        (the pre-existing writer-preference contract)."""
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        release = threading.Event()

        def long_reader():
            with lock.read():
                reader_in.set()
                release.wait(timeout=5)
            order.append("reader1")

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("reader2")

        threads = [threading.Thread(target=long_reader)]
        threads[0].start()
        assert reader_in.wait(timeout=5)
        threads.append(threading.Thread(target=writer))
        threads[1].start()
        time.sleep(0.05)
        threads.append(threading.Thread(target=late_reader))
        threads[2].start()
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert order.index("writer") < order.index("reader2")


class TestReentrantRead:
    def test_nested_read_with_queued_writer_does_not_deadlock(self):
        """The historical deadlock: thread A holds read, writer queues,
        A re-acquires read.  With writer preference alone, A waits for
        the writer which waits for A.  Re-entrancy must break the cycle."""
        lock = ReadWriteLock()
        outcome = []
        reader_in = threading.Event()
        writer_queued = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                assert writer_queued.wait(timeout=5)
                time.sleep(0.05)  # let the writer actually block
                with lock.read():  # re-entrant: must not deadlock
                    outcome.append("nested-read")

        def writer():
            assert reader_in.wait(timeout=5)
            writer_queued.set()
            with lock.write():
                outcome.append("write")

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads), "deadlocked"
        assert outcome == ["nested-read", "write"]

    def test_read_depth_counts_releases(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        # Still held once: a writer cannot get in.
        acquired = []

        def writer():
            lock.acquire_write()
            acquired.append(True)
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not acquired
        lock.release_read()
        t.join(timeout=5)
        assert acquired

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            ReadWriteLock().release_read()

    def test_self_deadlocking_upgrades_raise(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()
        with lock.write():
            with pytest.raises(RuntimeError):
                lock.acquire_read()
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_bad_batch_bound_rejected(self):
        with pytest.raises(ValueError):
            ReadWriteLock(max_writer_batch=0)


def _stress(tree, oracle_lock, oracle, dims, width, seconds=1.0, readers=3):
    """Hammer ``tree`` with writer+reader threads; mirror every write
    into ``oracle`` under ``oracle_lock``.  Returns reader errors."""
    stop = threading.Event()
    errors = []
    top = (1 << width) - 1

    def writer(seed):
        rng = random.Random(seed)
        while not stop.is_set():
            key = tuple(rng.randrange(1 << width) for _ in range(dims))
            with oracle_lock:
                if rng.random() < 0.7:
                    tree.put(key, seed)
                    oracle[key] = seed
                elif key in oracle:
                    tree.remove(key, None)
                    oracle.pop(key, None)

    def reader(seed):
        rng = random.Random(seed)
        try:
            while not stop.is_set():
                key = tuple(
                    rng.randrange(1 << width) for _ in range(dims)
                )
                tree.get(key)
                lo = tuple(max(0, k - 50) for k in key)
                hi = tuple(min(top, k + 50) for k in key)
                for found_key, _ in tree.query(lo, hi):
                    if not all(
                        l <= v <= h
                        for v, l, h in zip(found_key, lo, hi)
                    ):
                        errors.append(f"{found_key} outside {lo}..{hi}")
                tree.knn(key, 3)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(2)
    ] + [
        threading.Thread(target=reader, args=(100 + r,))
        for r in range(readers)
    ]
    for t in threads:
        t.start()
    time.sleep(seconds)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads), "stress deadlock"
    return errors


class TestSynchronizedStress:
    def test_interleaved_readers_writers_consistent(self):
        dims, width = 2, 10
        tree = SynchronizedPHTree(PHTree(dims=dims, width=width))
        oracle = {}
        errors = _stress(tree, threading.Lock(), oracle, dims, width)
        assert errors == []
        # Final state equals the mirrored oracle exactly.
        assert dict(tree.items()) == oracle
        tree.check_invariants()


class TestShardedStress:
    def test_interleaved_readers_writers_consistent(self):
        dims, width = 2, 10
        tree = ShardedPHTree(dims=dims, width=width, shards=4)
        oracle = {}
        errors = _stress(tree, threading.Lock(), oracle, dims, width)
        assert errors == []
        assert dict(tree.items()) == oracle
        tree.check_invariants()
        # And the final state equals an unsharded tree built from the
        # oracle -- the snapshot-vs-live consistency anchor.
        reference = PHTree(dims=dims, width=width)
        for key, value in oracle.items():
            reference.put(key, value)
        assert list(tree.items()) == list(reference.items())

    def test_snapshot_vs_live_consistency_under_writes(self):
        """Alternate write bursts with snapshot-engine reads: after
        every burst the fan-out result must equal both the live sharded
        read and the unsharded oracle."""
        dims, width = 3, 8
        rng = random.Random(13)
        oracle = PHTree(dims=dims, width=width)
        with ShardedPHTree(
            dims=dims, width=width, shards=4, workers=1
        ) as tree:
            lo = (0,) * dims
            hi = ((1 << width) - 1,) * dims
            for _ in range(5):
                for _ in range(60):
                    key = tuple(
                        rng.randrange(1 << width) for _ in range(dims)
                    )
                    if rng.random() < 0.8:
                        tree.put(key, None)
                        oracle.put(key, None)
                    elif key in oracle:
                        tree.remove(key)
                        oracle.remove(key)
                snapshot_read = tree.query(lo, hi)  # process pool
                assert snapshot_read == list(oracle.query(lo, hi))
