"""Deeper semantics of the reader/writer lock and the synchronized
facade: writer preference, snapshot isolation, compound operations."""

from __future__ import annotations

import threading
import time

import pytest

from repro import PHTree
from repro.core.concurrent import ReadWriteLock, SynchronizedPHTree


class TestWriterPreference:
    def test_waiting_writer_blocks_new_readers(self):
        """The lock is writer-preferring: once a writer waits, newly
        arriving readers queue behind it (no writer starvation)."""
        lock = ReadWriteLock()
        order = []
        reader_started = threading.Event()
        release_first_reader = threading.Event()

        def long_reader():
            with lock.read():
                reader_started.set()
                release_first_reader.wait(timeout=5)
            order.append("reader1-done")

        def writer():
            lock.acquire_write()
            order.append("writer")
            lock.release_write()

        def late_reader():
            with lock.read():
                order.append("reader2")

        t_reader = threading.Thread(target=long_reader)
        t_reader.start()
        assert reader_started.wait(timeout=5)
        t_writer = threading.Thread(target=writer)
        t_writer.start()
        time.sleep(0.05)  # let the writer reach its wait
        t_late = threading.Thread(target=late_reader)
        t_late.start()
        time.sleep(0.05)
        release_first_reader.set()
        for t in (t_reader, t_writer, t_late):
            t.join(timeout=5)
        # The writer must have gone before the late reader.
        assert order.index("writer") < order.index("reader2")


class TestSnapshotSemantics:
    def test_query_result_is_stable_after_mutation(self):
        tree = SynchronizedPHTree(PHTree(dims=1, width=8))
        tree.put((1,), "a")
        snapshot = tree.query((0,), (255,))
        tree.put((2,), "b")
        tree.remove((1,))
        # The materialised snapshot is unaffected by later writes.
        assert snapshot == [((1,), "a")]

    def test_compound_operation_under_explicit_lock(self):
        """The exposed lock supports atomic read-modify-write."""
        tree = SynchronizedPHTree(PHTree(dims=1, width=8))
        tree.put((1,), 0)

        def increment():
            for _ in range(200):
                with tree.lock.write():
                    current = tree.unsafe_tree.get((1,))
                    tree.unsafe_tree.put((1,), current + 1)

        threads = [threading.Thread(target=increment) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert tree.get((1,)) == 800

    def test_remove_with_default_is_threadsafe_signature(self):
        tree = SynchronizedPHTree(PHTree(dims=1, width=8))
        assert tree.remove((9,), "gone") == "gone"
        with pytest.raises(KeyError):
            tree.remove((9,))


class TestFacadeOverFloatTree:
    def test_wraps_phtreef(self):
        from repro import PHTreeF

        tree = SynchronizedPHTree(PHTreeF(dims=2))
        tree.put((0.5, -1.5), "v")
        assert tree.get((0.5, -1.5)) == "v"
        assert tree.query((-2.0, -2.0), (2.0, 2.0)) == [
            ((0.5, -1.5), "v")
        ]
        assert tree.knn((0.0, 0.0), 1) == [((0.5, -1.5), "v")]
