"""Delete-path properties: interleaved insert/delete keeps the tree in
the canonical shape (merges fire, representations follow the Section
3.2 size formulas), and shrinking a hypercube node downgrades HC ->
LHC exactly when the formulas say so."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, obs
from repro.check import validate_tree
from repro.core.hypercube import hc_bits, lhc_bits, prefer_hc
from repro.obs import probes


@pytest.mark.parametrize("dims,width", [(2, 8), (3, 16), (6, 16)])
def test_interleaved_insert_delete_keeps_invariants(dims, width):
    rng = random.Random(dims * 31 + width)
    tree = PHTree(dims=dims, width=width)
    shadow = {}
    limit = 1 << width
    for step in range(1500):
        if shadow and rng.random() < 0.45:
            key = rng.choice(list(shadow))
            assert tree.remove(key) == shadow.pop(key)
        else:
            key = tuple(rng.randrange(limit) for _ in range(dims))
            shadow[key] = step
            tree.put(key, step)
        if step % 250 == 0:
            validate_tree(tree, frozen_roundtrip=False)
    assert dict(tree.items()) == shadow
    validate_tree(tree)
    # Drain to empty: every merge along the way must leave a valid tree.
    for count, key in enumerate(list(shadow)):
        tree.remove(key)
        if count % 100 == 0:
            validate_tree(tree, frozen_roundtrip=False)
    assert len(tree) == 0
    validate_tree(tree)


def test_delete_restores_insertion_order_independence():
    # The canonical-shape property: after deleting a batch, the tree is
    # byte-for-byte the shape of one built from the survivors alone.
    from repro.core.frozen import freeze

    rng = random.Random(71)
    keys = [
        (rng.randrange(1 << 12), rng.randrange(1 << 12))
        for _ in range(300)
    ]
    keys = list(dict.fromkeys(keys))
    tree = PHTree(dims=2, width=12)
    for key in keys:
        tree.put(key, None)
    survivors = keys[: len(keys) // 3]
    for key in keys[len(keys) // 3 :]:
        tree.remove(key)
    rebuilt = PHTree(dims=2, width=12)
    for key in sorted(survivors):
        rebuilt.put(key, None)
    assert freeze(tree) == freeze(rebuilt)


def test_hc_to_lhc_downgrade_follows_size_formulas():
    # One root node (width-1 postfixes only): fill until HC wins, then
    # delete until the LHC formula takes over; the representation must
    # track prefer_hc exactly (hysteresis 0) and the switch is counted.
    k, width = 2, 16
    rng = random.Random(5)
    tree = PHTree(dims=k, width=width)
    keys = []
    seen = set()
    while len(keys) < 4:  # 4 of 4 addresses occupied -> HC territory
        key = tuple(rng.randrange(1 << width) for _ in range(k))
        address = tree_root_address(tree, key)
        if address in seen:
            continue
        seen.add(address)
        keys.append(key)
        tree.put(key, None)
    root = tree.root
    payload = root.postfix_payload_bits(k)
    assert prefer_hc(k, 0, 4, payload)
    assert root.container.is_hc
    assert hc_bits(k, 0, 4, payload) <= lhc_bits(k, 0, 4, payload)

    obs.reset()
    obs.enable()
    try:
        before = probes.switch_to_lhc.value
        while tree.root.num_slots() > 1:
            n_now = tree.root.num_slots()
            tree.remove(keys.pop())
            n_after = tree.root.num_slots()
            assert n_after == n_now - 1
            expected_hc = prefer_hc(
                k, 0, n_after, tree.root.postfix_payload_bits(k)
            )
            assert tree.root.container.is_hc == expected_hc
        assert not tree.root.container.is_hc  # 1 slot: LHC wins
        assert probes.switch_to_lhc.value > before
    finally:
        obs.disable()
        obs.reset()
    validate_tree(tree)


def tree_root_address(tree, key):
    """Root hypercube address of ``key`` (top bit of each dimension)."""
    shift = tree.width - 1
    address = 0
    for value in key:
        address = (address << 1) | ((value >> shift) & 1)
    return address


def test_merge_collapses_single_child_chain():
    # Two far-apart keys force a deep split; deleting one must merge the
    # path back so no non-root node has a single slot.
    tree = PHTree(dims=2, width=16)
    tree.put((0, 0), "a")
    tree.put((1, 1), "b")  # diverges only at the lowest bit
    tree.put((1 << 15, 1 << 15), "c")
    validate_tree(tree)
    tree.remove((1, 1))
    validate_tree(tree)  # would fail on an unmerged 1-slot chain node
    assert dict(tree.items()) == {(0, 0): "a", (1 << 15, 1 << 15): "c"}
