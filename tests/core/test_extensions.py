"""Tests for the paper's Outlook extensions: per-dimension bit widths,
the approximate range query, and the thread-safe wrapper."""

from __future__ import annotations

import random
import threading

import pytest

from repro import PHTree
from repro.core.concurrent import ReadWriteLock, SynchronizedPHTree


class TestPerDimensionWidths:
    def test_widths_property(self):
        tree = PHTree(dims=3, width=(8, 16, 4))
        assert tree.widths == (8, 16, 4)
        assert tree.width == 16  # internal width = max

    def test_uniform_width_still_works(self):
        tree = PHTree(dims=2, width=8)
        assert tree.widths == (8, 8)

    def test_per_dimension_validation(self):
        tree = PHTree(dims=2, width=(4, 8))
        tree.put((15, 255))
        with pytest.raises(ValueError):
            tree.put((16, 0))  # dim 0 capped at 4 bits
        with pytest.raises(ValueError):
            tree.put((0, 256))

    def test_width_count_must_match_dims(self):
        with pytest.raises(ValueError):
            PHTree(dims=2, width=(8, 8, 8))

    def test_bad_width_values(self):
        with pytest.raises(ValueError):
            PHTree(dims=2, width=(8, 0))

    def test_mixed_width_operations(self):
        rng = random.Random(1)
        tree = PHTree(dims=3, width=(4, 12, 8))
        reference = {}
        for _ in range(300):
            key = (
                rng.randrange(16),
                rng.randrange(4096),
                rng.randrange(256),
            )
            tree.put(key, rng.random())
            reference[key] = True
        tree.check_invariants()
        # Queries over the mixed domain.
        lo, hi = (0, 0, 0), (15, 2047, 127)
        got = sorted(k for k, _ in tree.query(lo, hi))
        want = sorted(
            k for k in reference if k[1] <= 2047 and k[2] <= 127
        )
        assert got == want

    def test_narrow_dimensions_share_prefix_for_free(self):
        """A boolean column beside a 32-bit column must not blow up the
        tree: the narrow dimension's implicit zero bits are prefix."""
        from repro import collect_stats

        rng = random.Random(2)
        tree = PHTree(dims=2, width=(1, 32))
        for _ in range(500):
            tree.put((rng.randrange(2), rng.randrange(1 << 32)))
        stats = collect_stats(tree)
        assert stats.max_depth <= 32 + 1


class TestApproxQuery:
    def make_tree(self):
        rng = random.Random(3)
        tree = PHTree(dims=2, width=12)
        reference = set()
        for _ in range(800):
            key = (rng.randrange(1 << 12), rng.randrange(1 << 12))
            tree.put(key)
            reference.add(key)
        return tree, reference

    def test_slack_zero_is_exact(self):
        tree, reference = self.make_tree()
        lo, hi = (100, 100), (900, 900)
        exact = sorted(k for k, _ in tree.query(lo, hi))
        approx = sorted(k for k, _ in tree.query_approx(lo, hi, 0))
        assert exact == approx

    @pytest.mark.parametrize("slack", [1, 2, 4, 6])
    def test_superset_within_tolerance(self, slack):
        tree, reference = self.make_tree()
        lo, hi = (500, 500), (2500, 2500)
        exact = {k for k, _ in tree.query(lo, hi)}
        approx = {k for k, _ in tree.query_approx(lo, hi, slack)}
        assert exact <= approx
        tolerance = (1 << slack) - 1
        for key in approx - exact:
            assert all(
                lo[d] - tolerance <= key[d] <= hi[d] + tolerance
                for d in range(2)
            ), (key, slack)

    def test_negative_slack_rejected(self):
        tree, _ = self.make_tree()
        with pytest.raises(ValueError):
            list(tree.query_approx((0, 0), (10, 10), -1))


class TestReadWriteLock:
    def test_reentrant_patterns(self):
        lock = ReadWriteLock()
        with lock.read():
            pass
        with lock.write():
            pass

    def test_parallel_readers(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read():
                barrier.wait()  # all 4 readers inside simultaneously
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 4

    def test_writer_exclusion(self):
        lock = ReadWriteLock()
        counter = {"value": 0}

        def writer():
            for _ in range(500):
                with lock.write():
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["value"] == 2000


class TestSynchronizedPHTree:
    def test_api_passthrough(self):
        tree = SynchronizedPHTree(PHTree(dims=2, width=8))
        assert tree.put((1, 2), "a") is None
        assert tree.get((1, 2)) == "a"
        assert tree.contains((1, 2))
        assert (1, 2) in tree
        assert len(tree) == 1
        assert tree.query((0, 0), (255, 255)) == [((1, 2), "a")]
        assert tree.knn((0, 0), 1) == [((1, 2), "a")]
        assert tree.items() == [((1, 2), "a")]
        assert tree.keys() == [(1, 2)]
        tree.update_key((1, 2), (3, 4))
        assert tree.remove((3, 4)) == "a"
        tree.clear()
        assert len(tree) == 0

    def test_put_all_bulk(self):
        tree = SynchronizedPHTree(PHTree(dims=1, width=8))
        tree.put_all([((i,), i) for i in range(50)])
        assert len(tree) == 50

    def test_concurrent_mixed_workload(self):
        """Hammer the tree from multiple threads; afterwards the content
        must equal a lock-protected dict model."""
        tree = SynchronizedPHTree(PHTree(dims=2, width=10))
        model = {}
        model_lock = threading.Lock()
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    key = (rng.randrange(1 << 10), rng.randrange(1 << 10))
                    action = rng.random()
                    if action < 0.55:
                        with model_lock:
                            tree.put(key, seed)
                            model[key] = seed
                    elif action < 0.75:
                        with model_lock:
                            removed = tree.remove(key, None)
                            model.pop(key, None)
                            del removed
                    elif action < 0.9:
                        tree.contains(key)  # concurrent read
                    else:
                        tree.query((0, 0), (1 << 9, 1 << 9))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert dict(tree.items()) == model
        tree.check_invariants()
