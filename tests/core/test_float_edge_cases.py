"""Float-facade edge cases: signed zero, infinities, and NaN must
behave identically under the generic and specialized kernels."""

from __future__ import annotations

import math

import pytest

from repro import PHTreeF
from repro.check import validate_tree

INF = float("inf")
NAN = float("nan")


@pytest.fixture(params=[True, False], ids=["specialized", "generic"])
def tree(request):
    return PHTreeF(dims=2, specialize=request.param)


# ---------------------------------------------------------------------------
# Signed zero: -0.0 and 0.0 are the same key everywhere.
# ---------------------------------------------------------------------------


def test_negative_zero_folds_into_zero(tree):
    tree.put((-0.0, 0.0), "a")
    assert tree.get((0.0, -0.0)) == "a"
    assert tree.contains((0.0, 0.0))
    assert len(tree) == 1
    tree.put((0.0, 0.0), "b")  # same key: update, not insert
    assert len(tree) == 1
    assert tree.get((-0.0, -0.0)) == "b"
    (key, value), = tree.items()
    assert value == "b"
    # The decoded key never resurrects the negative zero.
    assert math.copysign(1.0, key[0]) == 1.0
    assert math.copysign(1.0, key[1]) == 1.0


def test_negative_zero_in_query_corners(tree):
    tree.put((0.0, 0.0), "origin")
    tree.put((1.0, 1.0), "one")
    hits = tree.query_all((-0.0, -0.0), (0.5, 0.5))
    assert [value for _, value in hits] == ["origin"]
    assert tree.remove((-0.0, -0.0)) == "origin"
    assert len(tree) == 1


# ---------------------------------------------------------------------------
# Infinities: storable, orderable, queryable.
# ---------------------------------------------------------------------------


def test_infinities_store_and_look_up(tree):
    tree.put((INF, 1.0), "pos")
    tree.put((-INF, 1.0), "neg")
    tree.put((0.0, 1.0), "mid")
    assert tree.get((INF, 1.0)) == "pos"
    assert tree.get((-INF, 1.0)) == "neg"
    assert len(tree) == 3
    validate_tree(tree, frozen_roundtrip=False)


def test_full_domain_query_includes_infinities(tree):
    tree.put((INF, INF), "pp")
    tree.put((-INF, -INF), "nn")
    tree.put((3.5, -2.25), "fin")
    hits = tree.query_all((-INF, -INF), (INF, INF))
    assert {value for _, value in hits} == {"pp", "nn", "fin"}
    # A finite box excludes the infinite points.
    finite = tree.query_all((-1e308, -1e308), (1e308, 1e308))
    assert {value for _, value in finite} == {"fin"}


def test_knn_with_stored_infinities(tree):
    tree.put((INF, 0.0), "inf")
    tree.put((1.0, 0.0), "near")
    tree.put((100.0, 0.0), "far")
    result = tree.knn((0.0, 0.0), 2)
    assert [value for _, value in result] == ["near", "far"]
    # Query at infinity: the infinite point is at distance 0 (inf - inf
    # contributes nothing), every finite point is infinitely far.
    result = tree.knn((INF, 0.0), 1)
    assert [value for _, value in result] == ["inf"]


def test_knn_ranking_is_nan_free(tree):
    tree.put((INF, INF), "corner")
    tree.put((0.0, 0.0), "origin")
    result = tree.knn((INF, INF), 2)
    assert [value for _, value in result] == ["corner", "origin"]


# ---------------------------------------------------------------------------
# NaN: rejected consistently by every operation.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [(NAN, 0.0), (0.0, NAN), (NAN, NAN)])
def test_nan_rejected_everywhere(tree, bad):
    tree.put((1.0, 2.0), "ok")
    with pytest.raises(ValueError):
        tree.put(bad, "x")
    with pytest.raises(ValueError):
        tree.get(bad)
    with pytest.raises(ValueError):
        tree.contains(bad)
    with pytest.raises(ValueError):
        tree.remove(bad)
    with pytest.raises(ValueError):
        tree.update_key((1.0, 2.0), bad)
    with pytest.raises(ValueError):
        tree.update_key(bad, (3.0, 4.0))
    with pytest.raises(ValueError):
        tree.query_all(bad, (5.0, 5.0))
    with pytest.raises(ValueError):
        tree.query_all((0.0, 0.0), bad)
    with pytest.raises(ValueError):
        tree.knn(bad, 1)
    # Nothing leaked into the tree while rejecting.
    assert len(tree) == 1
    assert tree.get((1.0, 2.0)) == "ok"


# ---------------------------------------------------------------------------
# Engines agree with each other on the full edge-case workload.
# ---------------------------------------------------------------------------


def test_generic_and_specialized_agree_on_edge_workload():
    points = [
        (0.0, -0.0),
        (-0.0, 5.0),
        (INF, -INF),
        (-INF, INF),
        (1e-308, -1e-308),  # subnormals
        (1e308, -1e308),
        (math.pi, -math.e),
    ]
    spec = PHTreeF(dims=2, specialize=True)
    generic = PHTreeF(dims=2, specialize=False)
    for value, point in enumerate(points):
        spec.put(point, value)
        generic.put(point, value)
    assert list(spec.items()) == list(generic.items())
    assert spec.query_all((-INF, -INF), (INF, INF)) == generic.query_all(
        (-INF, -INF), (INF, INF)
    )
    for point in points:
        assert spec.get(point) == generic.get(point)
        assert spec.knn(point, 3) == generic.knn(point, 3)
    for point in points[::2]:
        assert spec.remove(point) == generic.remove(point)
    assert list(spec.items()) == list(generic.items())
    validate_tree(spec, frozen_roundtrip=False)
    validate_tree(generic, frozen_roundtrip=False)
