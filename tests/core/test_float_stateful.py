"""Stateful property test for the float facade: PHTreeF vs a dict model
under arbitrary float keys (subnormals, extremes, negative zero)."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import PHTreeF

# Full-range doubles, including subnormals and infinities; NaN excluded
# (rejected by the tree, covered by unit tests).
coords = st.floats(allow_nan=False, allow_infinity=True, width=64)
keys = st.tuples(coords, coords)
values = st.integers(min_value=0, max_value=99)


def fold_zero(key):
    """The tree folds -0.0 into +0.0; mirror that in the model."""
    return tuple(0.0 if v == 0.0 else v for v in key)


class PHTreeFMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tree = PHTreeF(dims=2)
        self.model = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        folded = fold_zero(key)
        assert self.tree.put(key, value) == self.model.get(folded)
        self.model[folded] = value

    @rule(key=keys)
    def lookup(self, key):
        folded = fold_zero(key)
        assert self.tree.get(key, "absent") == self.model.get(
            folded, "absent"
        )

    @rule(data=st.data())
    def remove_existing(self, data):
        if not self.model:
            return
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.remove(key) == self.model.pop(key)

    @rule(key=keys)
    def remove_missing_or_not(self, key):
        folded = fold_zero(key)
        if folded in self.model:
            assert self.tree.remove(key) == self.model.pop(folded)
        else:
            assert self.tree.remove(key, default="nope") == "nope"

    @rule(low=keys, data=st.data())
    def window(self, low, data):
        high = data.draw(keys)
        box_lo = tuple(min(a, b) for a, b in zip(low, high))
        box_hi = tuple(max(a, b) for a, b in zip(low, high))
        got = sorted(k for k, _ in self.tree.query(box_lo, box_hi))
        want = sorted(
            k
            for k in self.model
            if all(
                lo <= v <= hi
                for v, lo, hi in zip(k, box_lo, box_hi)
            )
        )
        assert got == want

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        self.tree.check_invariants()


TestPHTreeFStateful = PHTreeFMachine.TestCase
TestPHTreeFStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
