"""Golden-bytes tests: the serialised formats are persistence formats,
so their byte layout must not drift silently between revisions."""

from __future__ import annotations

import hashlib

from repro import PHTree
from repro.core.frozen import freeze
from repro.core.serialize import U64ValueCodec, serialize_tree


def reference_tree():
    """A fixed small tree exercising prefixes, sub-nodes and postfixes."""
    tree = PHTree(dims=2, width=8)
    for key, value in [
        ((0b0000_0001, 0b1000_0000), 11),
        ((0b0000_0011, 0b1000_0000), 22),
        ((0b0000_0011, 0b1000_0010), 33),
        ((0b1111_0000, 0b0000_1111), 44),
    ]:
        tree.put(key, value)
    return tree


class TestGoldenBytes:
    # Pinned hex digests of the two formats for the reference tree.
    # If a change legitimately alters the format, update these constants
    # AND bump the format magic (PHT1/PHF1) -- old files must not decode
    # silently wrong.
    GOLDEN_PHT1 = "54c1b9a1f133d99e6ea7c0138e5d452f"
    GOLDEN_PHF1 = "6cd806413d3541b79b62eef0a7831384"

    @staticmethod
    def digest(data: bytes) -> str:
        return hashlib.md5(data).hexdigest()

    def test_serialize_format_pinned(self):
        data = serialize_tree(reference_tree(), U64ValueCodec)
        assert self.digest(data) == self.GOLDEN_PHT1, (
            "PHT1 byte layout changed; bump the magic and regenerate "
            f"the golden digest ({self.digest(data)})"
        )

    def test_frozen_format_pinned(self):
        data = freeze(reference_tree(), U64ValueCodec)
        assert self.digest(data) == self.GOLDEN_PHF1, (
            "PHF1 byte layout changed; bump the magic and regenerate "
            f"the golden digest ({self.digest(data)})"
        )

    def test_header_fields_exact(self):
        data = serialize_tree(reference_tree(), U64ValueCodec)
        assert data[:4] == b"PHT1"
        # k = 2 (H), w = 8 (H), size = 4 (Q).
        assert data[4:6] == (2).to_bytes(2, "big")
        assert data[6:8] == (8).to_bytes(2, "big")
        assert data[8:16] == (4).to_bytes(8, "big")
