"""Tests for the frozen (byte-stream-resident) PH-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.serialize import U64ValueCodec


def frozen_of(reference, dims=3, width=16, codec=None):
    tree = PHTree(dims=dims, width=width)
    for key, value in reference.items():
        tree.put(key, value)
    if codec is None:
        return FrozenPHTree(freeze(tree))
    return FrozenPHTree(freeze(tree, codec), codec)


class TestBasics:
    def test_empty(self):
        frozen = FrozenPHTree(freeze(PHTree(dims=2, width=8)))
        assert len(frozen) == 0
        assert not frozen.contains((1, 2))
        assert list(frozen.items()) == []
        assert frozen.count((0, 0), (255, 255)) == 0

    def test_single_entry(self):
        tree = PHTree(dims=2, width=8)
        tree.put((7, 9))
        frozen = FrozenPHTree(freeze(tree))
        assert len(frozen) == 1
        assert frozen.contains((7, 9))
        assert not frozen.contains((7, 8))
        assert list(frozen.keys()) == [(7, 9)]

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            FrozenPHTree(b"XXXX" + b"\x00" * 32)

    def test_dimension_check(self):
        frozen = frozen_of({(1, 2, 3): None})
        with pytest.raises(ValueError):
            frozen.contains((1, 2))


class TestAgainstLiveTree:
    def test_point_queries(self, rng):
        reference = {
            tuple(rng.randrange(1 << 16) for _ in range(3)): None
            for _ in range(2000)
        }
        frozen = frozen_of(reference)
        for key in list(reference)[:300]:
            assert frozen.contains(key)
        for _ in range(300):
            probe = tuple(rng.randrange(1 << 16) for _ in range(3))
            assert frozen.contains(probe) == (probe in reference)

    def test_values_round_trip(self, rng):
        reference = {
            tuple(rng.randrange(1 << 16) for _ in range(3)): rng.randrange(
                1 << 40
            )
            for _ in range(500)
        }
        frozen = frozen_of(reference, codec=U64ValueCodec)
        for key, value in reference.items():
            assert frozen.get(key) == value
        assert frozen.get((0, 0, 0), default="absent") in (
            reference.get((0, 0, 0)),
            "absent",
        )

    def test_iteration_matches(self, rng):
        reference = {
            tuple(rng.randrange(1 << 12) for _ in range(2)): None
            for _ in range(800)
        }
        tree = PHTree(dims=2, width=12)
        for key in reference:
            tree.put(key)
        frozen = FrozenPHTree(freeze(tree))
        assert list(frozen.keys()) == list(tree.keys())  # same z-order

    def test_window_queries(self, rng):
        reference = {
            tuple(rng.randrange(1 << 12) for _ in range(2)): None
            for _ in range(800)
        }
        frozen = frozen_of(reference, dims=2, width=12)
        for _ in range(25):
            lo = tuple(rng.randrange(1 << 12) for _ in range(2))
            hi = tuple(
                min(v + rng.randrange(1 << 10), (1 << 12) - 1) for v in lo
            )
            got = sorted(k for k, _ in frozen.query(lo, hi))
            want = sorted(
                k
                for k in reference
                if all(
                    lo[d] <= k[d] <= hi[d] for d in range(2)
                )
            )
            assert got == want
            assert frozen.count(lo, hi) == len(want)

    def test_inverted_box_empty(self):
        frozen = frozen_of({(1, 1, 1): None})
        assert list(frozen.query((5, 0, 0), (0, 15, 15))) == []

    def test_thaw_round_trip(self, rng):
        reference = {
            tuple(rng.randrange(1 << 16) for _ in range(3)): None
            for _ in range(400)
        }
        frozen = frozen_of(reference)
        thawed = frozen.thaw()
        thawed.check_invariants()
        assert set(thawed.keys()) == set(reference)


class TestFrozenKnn:
    def test_matches_brute_force(self, rng):
        reference = {
            tuple(rng.randrange(1 << 12) for _ in range(2)): None
            for _ in range(600)
        }
        frozen = frozen_of(reference, dims=2, width=12)
        for _ in range(15):
            query = tuple(rng.randrange(1 << 12) for _ in range(2))

            def d2(k):
                return sum((a - b) ** 2 for a, b in zip(k, query))

            got = [d2(k) for k, _ in frozen.knn(query, 6)]
            want = sorted(d2(k) for k in reference)[:6]
            assert got == want

    def test_edge_cases(self):
        tree = PHTree(dims=2, width=8)
        frozen = FrozenPHTree(freeze(tree))
        assert frozen.knn((1, 1), 3) == []
        tree.put((5, 5), None)
        frozen = FrozenPHTree(freeze(tree))
        assert frozen.knn((0, 0), 3) == [((5, 5), None)]
        assert frozen.knn((0, 0), 0) == []
        with pytest.raises(ValueError):
            frozen.knn((1,), 1)

    def test_exact_hit_first(self, rng):
        reference = {
            tuple(rng.randrange(1 << 10) for _ in range(2)): None
            for _ in range(200)
        }
        frozen = frozen_of(reference, dims=2, width=10)
        target = next(iter(reference))
        got = frozen.knn(target, 1)
        assert got[0][0] == target


class TestMemoryClaim:
    def test_memory_is_exactly_the_bytes(self):
        frozen = frozen_of({(1, 2, 3): None, (4, 5, 6): None})
        data = freeze_of_same(frozen)
        assert frozen.memory_bytes() == len(data)

    def test_frozen_beats_flat_array_on_clustered_data(self, rng):
        tree = PHTree(dims=3, width=64)
        base = 0xABCDEF << 40
        for _ in range(2000):
            tree.put(
                tuple(base | rng.randrange(1 << 20) for _ in range(3))
            )
        data = freeze(tree)
        assert len(data) < len(tree) * 3 * 8


def freeze_of_same(frozen: FrozenPHTree) -> bytes:
    return freeze(frozen.thaw())


@given(
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
        max_size=60,
        unique=True,
    )
)
@settings(max_examples=40)
def test_property_frozen_equals_live(keys):
    tree = PHTree(dims=2, width=8)
    for key in keys:
        tree.put(key)
    frozen = FrozenPHTree(freeze(tree))
    assert len(frozen) == len(tree)
    assert list(frozen.keys()) == list(tree.keys())
    for key in keys:
        assert frozen.contains(key)
