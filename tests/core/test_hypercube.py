"""Tests for the HC/LHC containers, the size model and the successor
function (paper Sections 3.2 and 3.5)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hypercube import (
    HCContainer,
    LHCContainer,
    convert_container,
    hc_bits,
    lhc_bits,
    max_hc_dimensions,
    prefer_hc,
    successor,
)


@pytest.fixture(params=["hc", "lhc"])
def container(request):
    if request.param == "hc":
        return HCContainer(4)
    return LHCContainer()


class TestContainerBasics:
    def test_empty(self, container):
        assert len(container) == 0
        assert container.get(3) is None
        assert list(container.items()) == []

    def test_put_get_remove(self, container):
        assert container.put(5, "a") is None
        assert container.get(5) == "a"
        assert len(container) == 1
        assert container.put(5, "b") == "a"
        assert len(container) == 1
        assert container.remove(5) == "b"
        assert len(container) == 0
        assert container.remove(5) is None

    def test_put_rejects_none(self, container):
        with pytest.raises(ValueError):
            container.put(1, None)

    def test_items_sorted_by_address(self, container):
        for address in (9, 2, 14, 0):
            container.put(address, f"v{address}")
        assert [a for a, _ in container.items()] == [0, 2, 9, 14]

    def test_single_item(self, container):
        container.put(7, "x")
        assert container.single_item() == (7, "x")
        container.put(8, "y")
        with pytest.raises(ValueError):
            container.single_item()

    def test_mask_range_iteration(self, container):
        for address in range(16):
            container.put(address, address)
        # mL = 0b0100, mU = 0b0101: addresses with bit2 set, bits3,1 clear.
        got = [a for a, _ in container.items_in_mask_range(0b0100, 0b0101)]
        assert got == [0b0100, 0b0101]

    def test_mask_range_full(self, container):
        for address in (1, 5, 9):
            container.put(address, address)
        got = [a for a, _ in container.items_in_mask_range(0, 15)]
        assert got == [1, 5, 9]

    def test_mask_range_single_address(self, container):
        container.put(6, "x")
        got = [a for a, _ in container.items_in_mask_range(6, 6)]
        assert got == [6]


class TestHCContainerSpecifics:
    def test_capacity(self):
        assert HCContainer(3).n_slots == 8

    def test_refuses_huge_k(self):
        with pytest.raises(ValueError):
            HCContainer(max_hc_dimensions() + 1)


class TestConvert:
    def test_round_trip_preserves_content(self):
        lhc = LHCContainer()
        for address in (3, 1, 7):
            lhc.put(address, f"v{address}")
        hc = convert_container(lhc, 3, to_hc=True)
        assert hc.is_hc
        assert list(hc.items()) == list(lhc.items())
        back = convert_container(hc, 3, to_hc=False)
        assert not back.is_hc
        assert list(back.items()) == list(lhc.items())

    def test_noop_returns_none(self):
        lhc = LHCContainer()
        assert convert_container(lhc, 3, to_hc=False) is None


class TestSizeModel:
    def test_paper_example_dense_node_prefers_hc(self):
        # Paper Figure 2's bottom node: k=2, 3 postfixes of 1 bit each,
        # "almost completely filled and requires less space than LHC".
        assert prefer_hc(k=2, n_sub=0, n_post=3, postfix_bits=2)

    def test_paper_example_sparse_node_prefers_lhc(self):
        # Paper Figure 2's top node: one sub-node out of 4 slots.
        assert not prefer_hc(k=2, n_sub=1, n_post=0, postfix_bits=2 * 63)

    def test_empty_node_prefers_lhc(self):
        assert not prefer_hc(k=8, n_sub=0, n_post=0, postfix_bits=100)

    def test_huge_k_never_hc(self):
        assert not prefer_hc(
            k=max_hc_dimensions() + 10,
            n_sub=0,
            n_post=1 << 20,
            postfix_bits=0,
        )

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=64),
        st.data(),
    )
    def test_prefer_hc_matches_size_comparison(self, k, post_bits, data):
        capacity = 1 << k
        n_sub = data.draw(st.integers(min_value=0, max_value=capacity))
        n_post = data.draw(
            st.integers(min_value=0, max_value=capacity - n_sub)
        )
        expected = hc_bits(k, n_sub, n_post, post_bits) <= lhc_bits(
            k, n_sub, n_post, post_bits
        )
        assert prefer_hc(k, n_sub, n_post, post_bits) == expected

    def test_hysteresis_keeps_current_representation(self):
        # A configuration where HC is barely smaller: without hysteresis
        # we switch, with a large hysteresis we stay in LHC.
        k, n_sub, n_post, post_bits = 2, 0, 3, 2
        assert prefer_hc(k, n_sub, n_post, post_bits)
        assert not prefer_hc(
            k,
            n_sub,
            n_post,
            post_bits,
            hysteresis=2.0,
            currently_hc=False,
        )

    def test_full_hc_node_cheaper_per_entry_than_lhc(self):
        # The paper's best case (Section 3.4): a fully filled node with
        # postfix length 0 -- HC costs O(2**k), LHC pays k bits per entry.
        k = 4
        assert hc_bits(k, 0, 1 << k, 0) < lhc_bits(k, 0, 1 << k, 0)


class TestSuccessor:
    def test_skips_forced_bits(self):
        # mL = 0b0001 (bit0 forced 1), mU = 0b0111 (bit3 forced 0).
        mask_lower, mask_upper = 0b0001, 0b0111
        seq = [mask_lower]
        while seq[-1] < mask_upper:
            seq.append(successor(seq[-1], mask_lower, mask_upper))
        assert seq == [0b0001, 0b0011, 0b0101, 0b0111]

    def test_all_free(self):
        assert successor(0, 0, 0b111) == 1
        assert successor(0b101, 0, 0b111) == 0b110

    def test_fixed_point_range(self):
        # mL == mU: the single valid address.
        assert successor(0b0100, 0b0101, 0b0101) == 0b0101

    @given(st.data())
    def test_returns_next_valid_address(self, data):
        k = data.draw(st.integers(min_value=1, max_value=8))
        full = (1 << k) - 1
        mask_upper = data.draw(st.integers(min_value=0, max_value=full))
        # mL must be a subset of mU for any valid address to exist.
        mask_lower = (
            data.draw(st.integers(min_value=0, max_value=full)) & mask_upper
        )
        # The successor contract requires a *valid* current address
        # (iteration always starts at mask_lower, which is valid).
        address = (
            data.draw(st.integers(min_value=0, max_value=full))
            & mask_upper
        ) | mask_lower
        if address >= mask_upper:
            return
        got = successor(address, mask_lower, mask_upper)
        valid = [
            h
            for h in range(address + 1, full + 1)
            if (h | mask_lower) == h and (h & mask_upper) == h
        ]
        if valid:
            assert got == valid[0]
