"""HC/LHC switching hysteresis (paper §3.2: "a relaxed switching
condition could prevent nodes from oscillating between HC and LHC with
each insert/delete operation")."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.core.hypercube import hc_bits, lhc_bits
from repro.core.node import Entry, Node


def find_boundary_occupancy(k, post_len):
    """Smallest postfix count at which HC becomes preferable."""
    payload = post_len * k
    for n_post in range(1, (1 << k) + 1):
        if hc_bits(k, 0, n_post, payload) <= lhc_bits(
            k, 0, n_post, payload
        ):
            return n_post
    return None


class TestOscillation:
    def _count_switches(self, hysteresis):
        """Alternate insert/delete exactly at the representation
        boundary and count container-type changes."""
        k, post_len = 2, 1
        boundary = find_boundary_occupancy(k, post_len)
        assert boundary is not None and boundary >= 2
        node = Node(post_len=post_len, infix_len=0, prefix=(0,) * k)
        # Fill to just below the boundary.
        entries = {}
        for address in range(boundary - 1):
            entry = Entry(
                tuple((address >> (k - 1 - d)) & 1 for d in range(k))
            )
            entries[address] = entry
            node.put_slot(address, entry, k, "auto", hysteresis)
        switches = 0
        last = node.container.is_hc
        flip_address = boundary - 1
        flip_entry = Entry(
            tuple((flip_address >> (k - 1 - d)) & 1 for d in range(k))
        )
        for _ in range(50):
            node.put_slot(flip_address, flip_entry, k, "auto", hysteresis)
            if node.container.is_hc != last:
                switches += 1
                last = node.container.is_hc
            node.remove_slot(flip_address, k, "auto", hysteresis)
            if node.container.is_hc != last:
                switches += 1
                last = node.container.is_hc
        return switches

    def test_plain_comparison_oscillates(self):
        # The paper's evaluated implementation: every boundary crossing
        # rebuilds the container.
        assert self._count_switches(0.0) == 100

    def test_hysteresis_dampens_oscillation(self):
        assert self._count_switches(2.0) <= 1

    def test_hysteresis_preserves_correctness(self):
        rng = random.Random(5)
        plain = PHTree(dims=2, width=8)
        damped = PHTree(dims=2, width=8, hc_hysteresis=0.5)
        reference = {}
        for step in range(800):
            if rng.random() < 0.6 or not reference:
                key = (rng.randrange(256), rng.randrange(256))
                plain.put(key, step)
                damped.put(key, step)
                reference[key] = step
            else:
                key = rng.choice(sorted(reference))
                assert plain.remove(key) == damped.remove(key)
                del reference[key]
        assert dict(plain.items()) == dict(damped.items()) == reference
        damped.check_invariants()

    def test_hysteresis_never_grows_space_unboundedly(self):
        """A damped tree's modelled size stays within a constant factor
        of the size-optimal plain tree."""
        from repro.baselines.adapter import phtree_memory_bytes

        rng = random.Random(6)
        plain = PHTree(dims=2, width=16)
        damped = PHTree(dims=2, width=16, hc_hysteresis=0.5)
        for _ in range(2000):
            key = (rng.randrange(1 << 16), rng.randrange(1 << 16))
            plain.put(key)
            damped.put(key)
        plain_bytes = phtree_memory_bytes(plain)
        damped_bytes = phtree_memory_bytes(damped)
        assert damped_bytes <= plain_bytes * 1.5
