"""Iterative traversal kernel: ``range_scan`` (behind ``range_iter`` /
``approx_range_iter``) must be bit-identical -- same entries, same
order -- to the seed generator-stack engines it replaced, and
``iter_subtree`` must walk entries in exact z-order."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.core.kernel import iter_slots, iter_subtree
from repro.core.range_query import (
    generator_approx_range_iter,
    generator_range_iter,
    naive_range_iter,
    range_iter,
)
from repro.datasets.cluster import generate_cluster
from repro.datasets.cube import generate_cube
from repro.encoding.interleave import interleave

WIDTH = 16


def _trees(kind, n, dims, seed):
    scale = 1 << WIDTH
    points = (
        generate_cube(n, dims, seed=seed)
        if kind == "cube"
        else generate_cluster(n, dims, seed=seed)
    )
    keys = [
        tuple(
            min(max(int(v * scale), 0), scale - 1) for v in point
        )
        for point in points
    ]
    out = []
    for hc_mode in ("hc", "lhc"):
        tree = PHTree(dims=dims, width=WIDTH, hc_mode=hc_mode)
        for i, key in enumerate(keys):
            tree.put(key, i)
        out.append(tree)
    return out


def _boxes(rng, dims, count, extent_bits=14):
    boxes = []
    for _ in range(count):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
        hi = tuple(
            min(v + rng.randrange(1 << extent_bits), (1 << WIDTH) - 1)
            for v in lo
        )
        boxes.append((lo, hi))
    return boxes


class TestRangeKernelBitIdentity:
    @pytest.mark.parametrize("dims", [1, 2, 3, 6])
    @pytest.mark.parametrize("kind", ["cube", "cluster"])
    def test_matches_generator_engine(self, dims, kind):
        rng = random.Random(dims * 31)
        for tree in _trees(kind, 400, dims, seed=dims):
            root = tree.root
            for lo, hi in _boxes(rng, dims, 15):
                assert list(range_iter(root, lo, hi)) == list(
                    generator_range_iter(root, lo, hi)
                )

    @pytest.mark.parametrize("dims", [2, 3])
    @pytest.mark.parametrize("slack", [0, 1, 3, 8, 14])
    def test_approx_matches_generator_engine(self, dims, slack):
        rng = random.Random(dims * 37 + slack)
        for tree in _trees("cluster", 400, dims, seed=dims + 5):
            root = tree.root
            for lo, hi in _boxes(rng, dims, 10):
                got = list(
                    tree.query_approx(lo, hi, slack_bits=slack)
                )
                ref = list(
                    generator_approx_range_iter(root, lo, hi, slack)
                )
                assert got == ref

    @pytest.mark.parametrize("dims", [1, 2, 6])
    def test_matches_naive_engine_as_set(self, dims):
        rng = random.Random(dims * 41)
        (tree, _) = _trees("cube", 300, dims, seed=dims + 9)
        root = tree.root
        for lo, hi in _boxes(rng, dims, 10):
            assert sorted(range_iter(root, lo, hi)) == sorted(
                naive_range_iter(root, lo, hi)
            )

    def test_full_domain_box_flushes_everything(self, small_tree):
        tree, reference = small_tree
        lo = (0, 0, 0)
        hi = ((1 << 16) - 1,) * 3
        got = list(range_iter(tree.root, lo, hi))
        assert got == list(generator_range_iter(tree.root, lo, hi))
        assert len(got) == len(reference)

    def test_empty_and_single_entry(self):
        tree = PHTree(dims=2, width=8)
        assert list(tree.query((0, 0), (255, 255))) == []
        tree.put((7, 9), "v")
        assert list(tree.query((0, 0), (255, 255))) == [((7, 9), "v")]
        assert list(tree.query((8, 0), (255, 255))) == []

    def test_kernel_is_lazy(self, small_tree):
        tree, _ = small_tree
        it = range_iter(tree.root, (0, 0, 0), ((1 << 16) - 1,) * 3)
        assert iter(it) is it
        next(it)

    def test_approx_rejects_negative_slack_eagerly(self, small_tree):
        tree, _ = small_tree
        with pytest.raises(ValueError):
            tree.query_approx((0, 0, 0), (9, 9, 9), slack_bits=-1)


class TestIterSubtree:
    @pytest.mark.parametrize("hc_mode", ["hc", "lhc"])
    def test_items_in_exact_z_order(self, hc_mode):
        rng = random.Random(17)
        tree = PHTree(dims=3, width=WIDTH, hc_mode=hc_mode)
        reference = {}
        for _ in range(500):
            key = tuple(rng.randrange(1 << WIDTH) for _ in range(3))
            value = rng.randrange(1000)
            tree.put(key, value)
            reference[key] = value
        got = list(iter_subtree(tree.root))
        assert dict(got) == reference
        codes = [interleave(key, WIDTH) for key, _ in got]
        assert codes == sorted(codes)

    def test_tree_items_uses_subtree_order(self, small_tree):
        tree, reference = small_tree
        got = list(tree.items())
        assert dict(got) == reference
        codes = [interleave(key, 16) for key, _ in got]
        assert codes == sorted(codes)

    def test_iter_slots_yields_all_occupied(self, small_tree):
        tree, _ = small_tree
        container = tree.root.container
        assert list(iter_slots(container)) == [
            slot for _, slot in container.items()
        ]
