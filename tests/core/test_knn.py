"""k-nearest-neighbour correctness (the paper's Outlook extension)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree


def brute_force_knn(reference, query, n):
    def d2(key):
        return sum((a - b) ** 2 for a, b in zip(key, query))

    return sorted(d2(k) for k in reference)[:n]


class TestBasics:
    def test_empty_tree(self):
        tree = PHTree(dims=2, width=8)
        assert tree.knn((1, 1), 5) == []

    def test_zero_neighbours(self, small_tree):
        tree, _ = small_tree
        assert tree.knn((0, 0, 0), 0) == []

    def test_exact_hit_is_first(self):
        tree = PHTree(dims=2, width=8)
        tree.put((10, 10), "centre")
        tree.put((200, 200), "far")
        got = tree.knn((10, 10), 2)
        assert got[0] == ((10, 10), "centre")
        assert got[1] == ((200, 200), "far")

    def test_n_larger_than_tree(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 1))
        tree.put((2, 2))
        assert len(tree.knn((0, 0), 10)) == 2

    def test_results_sorted_by_distance(self, small_tree):
        tree, _ = small_tree
        query = (32768, 32768, 32768)
        got = tree.knn(query, 20)

        def d2(key):
            return sum((a - b) ** 2 for a, b in zip(key, query))

        distances = [d2(k) for k, _ in got]
        assert distances == sorted(distances)


class TestBruteForceEquivalence:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_random_queries(self, dims):
        width = 10
        rng = random.Random(dims * 7)
        tree = PHTree(dims=dims, width=width)
        reference = set()
        for _ in range(400):
            key = tuple(rng.randrange(1 << width) for _ in range(dims))
            tree.put(key)
            reference.add(key)
        for _ in range(20):
            query = tuple(rng.randrange(1 << width) for _ in range(dims))
            got = tree.knn(query, 7)

            def d2(key):
                return sum((a - b) ** 2 for a, b in zip(key, query))

            assert [d2(k) for k, _ in got] == brute_force_knn(
                reference, query, 7
            )

    @given(st.data())
    @settings(max_examples=30)
    def test_property(self, data):
        keys = data.draw(
            st.lists(
                st.tuples(st.integers(0, 255), st.integers(0, 255)),
                min_size=1,
                max_size=50,
                unique=True,
            )
        )
        query = (
            data.draw(st.integers(0, 255)),
            data.draw(st.integers(0, 255)),
        )
        n = data.draw(st.integers(1, 10))
        tree = PHTree(dims=2, width=8)
        for key in keys:
            tree.put(key)
        got = tree.knn(query, n)

        def d2(key):
            return sum((a - b) ** 2 for a, b in zip(key, query))

        assert [d2(k) for k, _ in got] == brute_force_knn(keys, query, n)


class TestQueryOutsideDataRange:
    def test_corner_query(self, small_tree):
        tree, reference = small_tree
        got = tree.knn((0, 0, 0), 5)

        def d2(key):
            return sum(v * v for v in key)

        assert [d2(k) for k, _ in got] == sorted(
            d2(k) for k in reference
        )[:5]
