"""Tests for the range-query masks (paper Section 3.5)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.masks import (
    address_fits,
    compute_masks,
    key_in_box,
    node_intersects_box,
)
from repro.core.node import Node, hypercube_address


def make_node(prefix, post_len):
    return Node(post_len=post_len, infix_len=0, prefix=prefix)


class TestAddressFits:
    def test_paper_check(self):
        # (h | mL) == h && (h & mU) == h
        assert address_fits(0b0101, 0b0001, 0b0111)
        assert not address_fits(0b0100, 0b0001, 0b0111)  # misses forced 1
        assert not address_fits(0b1001, 0b0001, 0b0111)  # hits forced 0

    def test_unconstrained(self):
        for h in range(8):
            assert address_fits(h, 0, 7)

    def test_exact(self):
        assert address_fits(0b101, 0b101, 0b101)
        assert not address_fits(0b100, 0b101, 0b101)


class TestComputeMasks:
    def test_node_fully_inside_query(self):
        node = make_node((0b0100, 0b0000), 1)
        mask_lower, mask_upper = compute_masks(node, (0, 0), (15, 15))
        assert mask_lower == 0b00
        assert mask_upper == 0b11

    def test_query_restricts_one_dimension(self):
        node = make_node((0b0100, 0b0000), 1)
        # Dim 0: node region [4, 7]; query only reaches [6, 7]: upper half.
        mask_lower, mask_upper = compute_masks(node, (6, 0), (15, 15))
        assert mask_lower == 0b10
        assert mask_upper == 0b11

    def test_query_caps_upper_half(self):
        node = make_node((0b0100, 0b0000), 1)
        # Dim 1: query reaches only [0, 1]: lower half of [0, 3].
        mask_lower, mask_upper = compute_masks(node, (0, 0), (15, 1))
        assert mask_lower == 0b00
        assert mask_upper == 0b10

    def test_masks_are_min_and_max_valid_addresses(self):
        node = make_node((0b1000, 0b0000), 2)
        mask_lower, mask_upper = compute_masks(node, (9, 2), (15, 2))
        valid = [
            h for h in range(4) if address_fits(h, mask_lower, mask_upper)
        ]
        assert valid[0] == mask_lower
        assert valid[-1] == mask_upper

    @given(st.data())
    def test_mask_filter_equals_geometric_filter(self, data):
        """The single-operation mask check must accept exactly the
        addresses whose quadrant intersects the query box."""
        k = data.draw(st.integers(min_value=1, max_value=4))
        width = 8
        post_len = data.draw(st.integers(min_value=0, max_value=width - 1))
        shift = post_len + 1
        prefix = tuple(
            (data.draw(st.integers(0, (1 << width) - 1)) >> shift) << shift
            for _ in range(k)
        )
        node = make_node(prefix, post_len)
        box_min = tuple(
            data.draw(st.integers(0, (1 << width) - 1)) for _ in range(k)
        )
        box_max = tuple(
            data.draw(st.integers(lo, (1 << width) - 1)) for lo in box_min
        )
        if not node_intersects_box(node, box_min, box_max):
            return
        mask_lower, mask_upper = compute_masks(node, box_min, box_max)
        half = 1 << post_len
        for address in range(1 << k):
            # Geometric truth: does this quadrant intersect the box?
            intersects = True
            for dim in range(k):
                bit = (address >> (k - 1 - dim)) & 1
                lo = prefix[dim] + bit * half
                hi = lo + half - 1
                if box_max[dim] < lo or box_min[dim] > hi:
                    intersects = False
                    break
            assert address_fits(address, mask_lower, mask_upper) == (
                intersects
            ), (address, mask_lower, mask_upper)


class TestNodeIntersectsBox:
    def test_disjoint(self):
        node = make_node((0b1000, 0b0000), 1)
        assert not node_intersects_box(node, (0, 0), (7, 15))
        assert node_intersects_box(node, (0, 0), (8, 15))

    def test_contained(self):
        node = make_node((0b1000, 0b0000), 1)
        assert node_intersects_box(node, (9, 1), (10, 2))


class TestKeyInBox:
    def test_inclusive_edges(self):
        assert key_in_box((3, 5), (3, 5), (3, 5))
        assert not key_in_box((3, 6), (3, 5), (3, 5))
        assert not key_in_box((2, 5), (3, 5), (3, 5))
