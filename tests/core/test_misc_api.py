"""Odds-and-ends API coverage: nearest_iter, count, from_int_tree,
dataset factory guards, fast-path window queries."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, PHTreeF
from repro.datasets import make_dataset


class TestNearestIter:
    def test_streams_all_entries_in_distance_order(self):
        rng = random.Random(31)
        tree = PHTree(dims=2, width=10)
        keys = {
            (rng.randrange(1 << 10), rng.randrange(1 << 10))
            for _ in range(200)
        }
        for key in keys:
            tree.put(key)
        query = (512, 512)

        def d2(k):
            return sum((a - b) ** 2 for a, b in zip(k, query))

        seen = [d2(k) for k, _ in tree.nearest_iter(query)]
        assert len(seen) == len(keys)
        assert seen == sorted(seen)

    def test_lazy_consumption(self):
        tree = PHTree(dims=1, width=8)
        for v in range(100):
            tree.put((v,))
        iterator = tree.nearest_iter((50,))
        first = next(iterator)
        assert first[0] == (50,)
        second = next(iterator)
        assert second[0] in ((49,), (51,))

    def test_empty_tree(self):
        tree = PHTree(dims=1, width=8)
        assert list(tree.nearest_iter((1,))) == []


class TestCount:
    def test_matches_query_length(self):
        rng = random.Random(37)
        tree = PHTree(dims=2, width=8)
        for _ in range(300):
            tree.put((rng.randrange(256), rng.randrange(256)))
        lo, hi = (10, 10), (200, 200)
        assert tree.count(lo, hi) == len(tree.query_all(lo, hi))

    def test_empty_box(self):
        tree = PHTree(dims=2, width=8)
        tree.put((5, 5))
        assert tree.count((6, 6), (7, 7)) == 0
        assert tree.count((5, 5), (5, 5)) == 1


class TestFromIntTree:
    def test_wraps_encoded_tree(self):
        base = PHTreeF(dims=2)
        base.put((1.5, -2.5), "v")
        facade = PHTreeF.from_int_tree(base.int_tree)
        assert facade.get((1.5, -2.5)) == "v"
        assert len(facade) == 1

    def test_rejects_narrow_trees(self):
        with pytest.raises(ValueError):
            PHTreeF.from_int_tree(PHTree(dims=2, width=32))


class TestDatasetFactory:
    def test_known_names(self):
        for name, dims in (
            ("CUBE", 3),
            ("CLUSTER", 3),
            ("CLUSTER0.4", 2),
            ("CLUSTER0.5", 4),
        ):
            points = make_dataset(name, 50, dims)
            assert len(points) == 50
            assert all(len(p) == dims for p in points)

    def test_tiger_requires_2d(self):
        with pytest.raises(ValueError):
            make_dataset("TIGER", 10, 3)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("GALAXY", 10, 2)


class TestFastPathWindow:
    def test_fully_contained_subtree_enumeration(self):
        """A window covering a whole dense subtree exercises the §3.5
        fast path; results must match the slow traversal exactly,
        including z-ordering."""
        rng = random.Random(41)
        tree = PHTree(dims=2, width=16)
        base = 0x4200
        cluster = set()
        while len(cluster) < 300:
            key = (base | rng.randrange(256), base | rng.randrange(256))
            cluster.add(key)
        for key in cluster:
            tree.put(key)
        tree.put((0, 0))
        tree.put((0xFFFF, 0xFFFF))
        lo, hi = (base, base), (base | 255, base | 255)
        fast = [k for k, _ in tree.query(lo, hi)]
        naive = sorted(
            k for k, _ in tree.query(lo, hi, use_masks=False)
        )
        assert sorted(fast) == naive == sorted(cluster)
        # Fast path preserves z-order too.
        from repro.encoding.interleave import interleave

        codes = [interleave(list(k), 16) for k in fast]
        assert codes == sorted(codes)

    def test_window_covering_root(self):
        tree = PHTree(dims=2, width=8)
        rng = random.Random(43)
        keys = {
            (rng.randrange(256), rng.randrange(256)) for _ in range(150)
        }
        for key in keys:
            tree.put(key)
        got = {k for k, _ in tree.query((0, 0), (255, 255))}
        assert got == keys
