"""Tests for the PH-tree multimap (duplicate keys)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multimap import PHTreeMultiMap


class TestBasics:
    def test_multiple_values_per_key(self):
        mm = PHTreeMultiMap(dims=2, width=8)
        mm.put((1, 2), "a")
        mm.put((1, 2), "b")
        mm.put((1, 2), "a")  # duplicate values allowed
        assert mm.get((1, 2)) == ["a", "b", "a"]
        assert mm.count((1, 2)) == 3
        assert len(mm) == 3
        assert mm.key_count() == 1

    def test_none_values(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((5,))
        mm.put((5,))
        assert mm.count((5,)) == 2
        assert mm.get((5,)) == [None, None]

    def test_get_returns_copy(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((5,), "a")
        values = mm.get((5,))
        values.append("tampered")
        assert mm.get((5,)) == ["a"]

    def test_contains(self):
        mm = PHTreeMultiMap(dims=2, width=8)
        assert not mm.contains((1, 1))
        mm.put((1, 1), "x")
        assert (1, 1) in mm


class TestRemoval:
    def test_remove_single_occurrence(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((3,), "a")
        mm.put((3,), "b")
        assert mm.remove((3,), "a")
        assert mm.get((3,)) == ["b"]
        assert len(mm) == 1

    def test_remove_last_value_drops_key(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((3,), "a")
        assert mm.remove((3,), "a")
        assert not mm.contains((3,))
        assert mm.key_count() == 0
        mm.check_invariants()

    def test_remove_missing_value(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((3,), "a")
        assert not mm.remove((3,), "z")
        assert not mm.remove((4,), "a")
        assert len(mm) == 1

    def test_remove_key(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((3,), "a")
        mm.put((3,), "b")
        assert mm.remove_key((3,)) == ["a", "b"]
        assert len(mm) == 0
        assert mm.remove_key((3,)) == []

    def test_clear(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((3,), "a")
        mm.clear()
        assert len(mm) == 0
        mm.check_invariants()


class TestQueries:
    def test_window_query_yields_all_pairs(self):
        mm = PHTreeMultiMap(dims=2, width=8)
        mm.put((1, 1), "a")
        mm.put((1, 1), "b")
        mm.put((5, 5), "c")
        mm.put((200, 200), "out")
        got = sorted(v for _, v in mm.query((0, 0), (10, 10)))
        assert got == ["a", "b", "c"]

    def test_items_roundtrip(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        pairs = [((1,), "a"), ((1,), "b"), ((2,), "c")]
        for key, value in pairs:
            mm.put(key, value)
        assert sorted(mm.items()) == sorted(pairs)
        assert list(mm.keys()) == [(1,), (2,)]

    def test_knn_counts_pairs(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((10,), "near-a")
        mm.put((10,), "near-b")
        mm.put((100,), "far")
        got = mm.knn((11,), 2)
        assert [v for _, v in got] == ["near-a", "near-b"]
        got3 = mm.knn((11,), 3)
        assert [v for _, v in got3] == ["near-a", "near-b", "far"]

    def test_knn_more_than_content(self):
        mm = PHTreeMultiMap(dims=1, width=8)
        mm.put((1,), "only")
        assert mm.knn((0,), 10) == [((1,), "only")]


class TestModelEquivalence:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_against_dict_of_lists(self, data):
        mm = PHTreeMultiMap(dims=1, width=6)
        model = {}
        for _ in range(60):
            action = data.draw(
                st.sampled_from(["put", "remove", "remove_key"])
            )
            key = (data.draw(st.integers(0, 63)),)
            if action == "put":
                value = data.draw(st.integers(0, 5))
                mm.put(key, value)
                model.setdefault(key, []).append(value)
            elif action == "remove":
                value = data.draw(st.integers(0, 5))
                expected = key in model and value in model[key]
                assert mm.remove(key, value) == expected
                if expected:
                    model[key].remove(value)
                    if not model[key]:
                        del model[key]
            else:
                got = mm.remove_key(key)
                assert got == model.pop(key, [])
        assert sorted(mm.items()) == sorted(
            (key, value)
            for key, values in model.items()
            for value in values
        )
        mm.check_invariants()
