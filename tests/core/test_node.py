"""Tests for PH-tree nodes: addressing, prefixes, regions, representation
switching."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.node import Entry, Node, hypercube_address, masked_prefix


class TestHypercubeAddress:
    def test_paper_figure_2(self):
        # Entry (0001, 1000): first bit layer is (0, 1) -> address 01.
        assert hypercube_address((0b0001, 0b1000), 3) == 0b01

    def test_one_dimension(self):
        assert hypercube_address((0b0010,), 1) == 1
        assert hypercube_address((0b0010,), 2) == 0

    def test_dimension_zero_is_most_significant(self):
        assert hypercube_address((1, 0, 0), 0) == 0b100
        assert hypercube_address((0, 0, 1), 0) == 0b001

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=15),
    )
    def test_address_in_range(self, key, post_len):
        address = hypercube_address(key, post_len)
        assert 0 <= address < (1 << len(key))


class TestMaskedPrefix:
    def test_clears_low_bits(self):
        assert masked_prefix((0b1111, 0b1010), 1) == (0b1100, 0b1000)

    def test_post_len_covers_everything(self):
        assert masked_prefix((0xFFFF,), 15) == (0,)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=15),
    )
    def test_idempotent(self, key, post_len):
        once = masked_prefix(key, post_len)
        assert masked_prefix(once, post_len) == once


class TestNodeGeometry:
    def make_node(self):
        # Region: bits >= 3 fixed to 0b0100... per dim; post_len = 2.
        return Node(post_len=2, infix_len=0, prefix=(0b01000, 0b00000))

    def test_region(self):
        node = self.make_node()
        lower, upper = node.region()
        assert lower == (0b01000, 0b00000)
        assert upper == (0b01111, 0b00111)

    def test_matches_prefix(self):
        node = self.make_node()
        assert node.matches_prefix((0b01010, 0b00001))
        assert not node.matches_prefix((0b11010, 0b00001))
        assert not node.matches_prefix((0b01010, 0b01001))

    def test_prefix_conflict_pos(self):
        node = self.make_node()
        assert node.prefix_conflict_pos((0b01010, 0b00001)) == -1
        # Differs at bit 4 in dim 0.
        assert node.prefix_conflict_pos((0b11000, 0b00000)) == 4
        # Differs at bit 3 in dim 1.
        assert node.prefix_conflict_pos((0b01000, 0b01000)) == 3
        # Max over dimensions wins.
        assert node.prefix_conflict_pos((0b11000, 0b01000)) == 4


class TestNodeSlots:
    def test_put_and_counts(self):
        node = Node(post_len=3, infix_len=0, prefix=(0, 0))
        entry = Entry((1, 2), "v")
        child = Node(post_len=1, infix_len=1, prefix=(0, 0))
        node.put_slot(0, entry, k=2)
        node.put_slot(3, child, k=2)
        assert node.num_slots() == 2
        assert node.slot_counts() == (1, 1)
        assert node.get_slot(0) is entry
        assert node.get_slot(3) is child
        assert node.get_slot(1) is None

    def test_replace_updates_counts(self):
        node = Node(post_len=3, infix_len=0, prefix=(0, 0))
        node.put_slot(0, Entry((1, 2), "v"), k=2)
        node.put_slot(0, Node(post_len=1, infix_len=1, prefix=(0, 0)), k=2)
        assert node.slot_counts() == (1, 0)

    def test_remove_updates_counts(self):
        node = Node(post_len=3, infix_len=0, prefix=(0, 0))
        node.put_slot(2, Entry((1, 2), "v"), k=2)
        node.remove_slot(2, k=2)
        assert node.slot_counts() == (0, 0)
        assert node.num_slots() == 0

    def test_postfix_payload_bits(self):
        node = Node(post_len=5, infix_len=0, prefix=(0, 0, 0))
        assert node.postfix_payload_bits(3) == 15
        assert node.postfix_payload_bits(3, value_bits=32) == 47


class TestRepresentationSwitching:
    def test_forced_modes(self):
        for mode, expect_hc in (("hc", True), ("lhc", False)):
            node = Node(post_len=1, infix_len=0, prefix=(0, 0))
            node.put_slot(0, Entry((0, 0)), k=2, hc_mode=mode)
            assert node.container.is_hc == expect_hc

    def test_auto_switches_to_hc_when_dense(self):
        node = Node(post_len=1, infix_len=0, prefix=(0, 0))
        for address in range(4):
            node.put_slot(
                address, Entry((address >> 1, address & 1)), k=2
            )
        assert node.container.is_hc

    def test_auto_switches_back_to_lhc_when_sparse(self):
        node = Node(post_len=20, infix_len=0, prefix=(0, 0))
        for address in range(4):
            node.put_slot(address, Entry((0, 0)), k=2)
        dense_was_hc = node.container.is_hc
        for address in range(3):
            node.remove_slot(address, k=2)
        # With long postfixes and 1/4 occupancy LHC must win.
        assert not node.container.is_hc or not dense_was_hc

    def test_content_preserved_across_switches(self):
        node = Node(post_len=1, infix_len=0, prefix=(0, 0))
        entries = {}
        for address in range(4):
            entry = Entry((address >> 1, address & 1), f"v{address}")
            entries[address] = entry
            node.put_slot(address, entry, k=2)
        for address, entry in entries.items():
            assert node.get_slot(address) is entry
