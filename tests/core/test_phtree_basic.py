"""Basic map semantics of the PH-tree: put/get/remove/contains/iteration,
argument validation, update_key, clear."""

from __future__ import annotations

import pytest

from repro import PHTree


class TestConstruction:
    def test_defaults(self):
        tree = PHTree(dims=3)
        assert tree.dims == 3
        assert tree.width == 64
        assert len(tree) == 0
        assert not tree
        assert tree.root is None

    @pytest.mark.parametrize("dims", [0, -1])
    def test_rejects_bad_dims(self, dims):
        with pytest.raises(ValueError):
            PHTree(dims=dims)

    @pytest.mark.parametrize("width", [0, -5])
    def test_rejects_bad_width(self, width):
        with pytest.raises(ValueError):
            PHTree(dims=2, width=width)

    def test_rejects_bad_hc_mode(self):
        with pytest.raises(ValueError):
            PHTree(dims=2, hc_mode="sometimes")

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ValueError):
            PHTree(dims=2, hc_hysteresis=-0.1)


class TestPutGet:
    def test_single_entry(self):
        tree = PHTree(dims=1, width=4)
        assert tree.put((2,), "two") is None
        assert len(tree) == 1
        assert tree.get((2,)) == "two"
        assert tree.contains((2,))
        assert (2,) in tree

    def test_paper_figure_1b(self):
        # The 1D example: 0010 then 0001 share the prefix 00.
        tree = PHTree(dims=1, width=4)
        tree.put((0b0010,))
        tree.put((0b0001,))
        assert len(tree) == 2
        assert tree.contains((0b0010,))
        assert tree.contains((0b0001,))
        assert not tree.contains((0b0000,))

    def test_paper_figure_2(self):
        # The 2D example: (0001, 1000), (0011, 1000), (0011, 1010).
        tree = PHTree(dims=2, width=4)
        for key in [(0b0001, 0b1000), (0b0011, 0b1000), (0b0011, 0b1010)]:
            tree.put(key)
        assert len(tree) == 3
        assert sorted(tree.keys()) == [
            (0b0001, 0b1000),
            (0b0011, 0b1000),
            (0b0011, 0b1010),
        ]

    def test_update_returns_previous_value(self):
        tree = PHTree(dims=2, width=8)
        assert tree.put((1, 2), "a") is None
        assert tree.put((1, 2), "b") == "a"
        assert len(tree) == 1
        assert tree.get((1, 2)) == "b"

    def test_get_default(self):
        tree = PHTree(dims=2, width=8)
        assert tree.get((1, 2)) is None
        assert tree.get((1, 2), default="missing") == "missing"

    def test_none_values_are_storable(self):
        tree = PHTree(dims=1, width=8)
        tree.put((5,), None)
        assert tree.contains((5,))
        assert tree.get((5,), default="sentinel") is None

    def test_extreme_coordinates(self):
        tree = PHTree(dims=2, width=8)
        tree.put((0, 0), "origin")
        tree.put((255, 255), "corner")
        tree.put((0, 255), "mixed")
        assert tree.get((0, 0)) == "origin"
        assert tree.get((255, 255)) == "corner"
        assert tree.get((0, 255)) == "mixed"


class TestValidation:
    def test_wrong_dimensionality(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(ValueError):
            tree.put((1,))
        with pytest.raises(ValueError):
            tree.put((1, 2, 3))

    def test_out_of_range_coordinates(self):
        tree = PHTree(dims=1, width=8)
        with pytest.raises(ValueError):
            tree.put((256,))
        with pytest.raises(ValueError):
            tree.put((-1,))

    def test_float_coordinates_rejected(self):
        tree = PHTree(dims=1, width=8)
        with pytest.raises(TypeError):
            tree.put((1.5,))

    def test_list_keys_accepted(self):
        tree = PHTree(dims=2, width=8)
        tree.put([1, 2], "v")
        assert tree.get([1, 2]) == "v"
        assert tree.get((1, 2)) == "v"


class TestRemove:
    def test_remove_returns_value(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2), "x")
        assert tree.remove((1, 2)) == "x"
        assert len(tree) == 0
        assert not tree.contains((1, 2))

    def test_remove_missing_raises(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(KeyError):
            tree.remove((1, 2))

    def test_remove_missing_with_default(self):
        tree = PHTree(dims=2, width=8)
        assert tree.remove((1, 2), default="gone") == "gone"

    def test_remove_near_miss(self):
        # A key sharing a long prefix with a stored key must not match.
        tree = PHTree(dims=1, width=16)
        tree.put((0b1010101010101010,), "v")
        with pytest.raises(KeyError):
            tree.remove((0b1010101010101011,))
        assert len(tree) == 1

    def test_reinsert_after_remove(self):
        tree = PHTree(dims=2, width=8)
        tree.put((3, 4), "first")
        tree.remove((3, 4))
        tree.put((3, 4), "second")
        assert tree.get((3, 4)) == "second"


class TestUpdateKey:
    def test_moves_value(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 1), "v")
        tree.update_key((1, 1), (200, 200))
        assert not tree.contains((1, 1))
        assert tree.get((200, 200)) == "v"
        assert len(tree) == 1

    def test_same_key_noop(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 1), "v")
        tree.update_key((1, 1), (1, 1))
        assert tree.get((1, 1)) == "v"

    def test_missing_source_raises(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(KeyError):
            tree.update_key((1, 1), (2, 2))

    def test_occupied_target_raises(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 1), "a")
        tree.put((2, 2), "b")
        with pytest.raises(ValueError):
            tree.update_key((1, 1), (2, 2))
        assert tree.get((1, 1)) == "a"


class TestIteration:
    def test_items_in_z_order(self):
        tree = PHTree(dims=1, width=8)
        for v in (200, 5, 120, 64):
            tree.put((v,), v)
        # 1D z-order is numeric order.
        assert [k for k, _ in tree.items()] == [(5,), (64,), (120,), (200,)]
        assert list(tree.keys()) == [(5,), (64,), (120,), (200,)]
        assert list(iter(tree)) == [(5,), (64,), (120,), (200,)]

    def test_items_carry_values(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2), "a")
        tree.put((3, 4), "b")
        assert dict(tree.items()) == {(1, 2): "a", (3, 4): "b"}


class TestClear:
    def test_clear(self, small_tree):
        tree, reference = small_tree
        assert len(tree) == len(reference)
        tree.clear()
        assert len(tree) == 0
        assert tree.root is None
        tree.check_invariants()
        # Tree is reusable after clear.
        tree.put((1, 2, 3), "v")
        assert tree.get((1, 2, 3)) == "v"


class TestSingleDimensionWidths:
    @pytest.mark.parametrize("width", [1, 2, 8, 16, 32, 64])
    def test_various_widths(self, width):
        tree = PHTree(dims=2, width=width)
        hi = (1 << width) - 1
        tree.put((0, hi), "a")
        tree.put((hi, 0), "b")
        assert tree.get((0, hi)) == "a"
        assert tree.get((hi, 0)) == "b"
        tree.check_invariants()

    def test_boolean_tree(self):
        # width=1: each dimension stores a single bit (the paper's boolean
        # dataset scenario from Section 2).
        tree = PHTree(dims=16, width=1)
        key_a = tuple(i % 2 for i in range(16))
        key_b = tuple((i + 1) % 2 for i in range(16))
        tree.put(key_a, "a")
        tree.put(key_b, "b")
        assert tree.get(key_a) == "a"
        assert tree.get(key_b) == "b"
        # One node suffices: all information is in the first bit layer.
        from repro.core import collect_stats

        assert collect_stats(tree).n_nodes == 1
