"""Tests of the floating-point facade (paper Section 3.3)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTreeF

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_put_get_remove(self):
        tree = PHTreeF(dims=2)
        assert tree.put((0.5, -0.25), "v") is None
        assert tree.get((0.5, -0.25)) == "v"
        assert tree.contains((0.5, -0.25))
        assert (0.5, -0.25) in tree
        assert tree.remove((0.5, -0.25)) == "v"
        assert len(tree) == 0

    def test_remove_missing(self):
        tree = PHTreeF(dims=2)
        with pytest.raises(KeyError):
            tree.remove((1.0, 2.0))
        assert tree.remove((1.0, 2.0), default="gone") == "gone"

    def test_negative_zero_is_positive_zero(self):
        tree = PHTreeF(dims=1)
        tree.put((-0.0,), "zero")
        assert tree.get((0.0,)) == "zero"
        assert tree.put((0.0,), "updated") == "zero"
        assert len(tree) == 1

    def test_nan_rejected(self):
        tree = PHTreeF(dims=1)
        with pytest.raises(ValueError):
            tree.put((float("nan"),))

    def test_infinities_storable(self):
        tree = PHTreeF(dims=1)
        tree.put((float("inf"),), "+inf")
        tree.put((float("-inf"),), "-inf")
        assert tree.get((float("inf"),)) == "+inf"
        assert tree.get((float("-inf"),)) == "-inf"

    def test_update_key(self):
        tree = PHTreeF(dims=2)
        tree.put((1.5, 2.5), "v")
        tree.update_key((1.5, 2.5), (-3.25, 4.0))
        assert tree.get((-3.25, 4.0)) == "v"
        assert not tree.contains((1.5, 2.5))

    def test_clear(self, small_float_tree):
        tree, _ = small_float_tree
        tree.clear()
        assert len(tree) == 0
        tree.check_invariants()


class TestQueries:
    def test_range_query_brute_force(self, small_float_tree):
        tree, reference = small_float_tree
        rng = random.Random(3)
        for _ in range(25):
            lo = (rng.uniform(-10, 8), rng.uniform(-10, 8))
            hi = (lo[0] + rng.uniform(0, 4), lo[1] + rng.uniform(0, 4))
            got = sorted(k for k, _ in tree.query(lo, hi))
            want = sorted(
                k
                for k in reference
                if lo[0] <= k[0] <= hi[0] and lo[1] <= k[1] <= hi[1]
            )
            assert got == want

    def test_range_query_spanning_zero(self):
        # Negative and positive values live in different encoded halves;
        # a box spanning zero exercises the boundary.
        tree = PHTreeF(dims=1)
        for v in (-2.0, -0.5, 0.0, 0.5, 2.0):
            tree.put((v,))
        got = sorted(k[0] for k, _ in tree.query((-1.0,), (1.0,)))
        assert got == [-0.5, 0.0, 0.5]

    def test_query_matches_masks_off(self, small_float_tree):
        tree, _ = small_float_tree
        lo, hi = (-5.0, -5.0), (5.0, 5.0)
        masked = sorted(k for k, _ in tree.query(lo, hi))
        naive = sorted(k for k, _ in tree.query(lo, hi, use_masks=False))
        assert masked == naive

    def test_items_decode_back(self):
        tree = PHTreeF(dims=2)
        points = {(0.1, -0.2), (1e-300, 1e300), (-5.5, 42.0)}
        for p in points:
            tree.put(p)
        assert set(tree.keys()) == points


class TestKnnFloat:
    def test_brute_force_equivalence(self, small_float_tree):
        tree, reference = small_float_tree
        rng = random.Random(17)
        for _ in range(10):
            query = (rng.uniform(-12, 12), rng.uniform(-12, 12))
            got = tree.knn(query, 9)

            def d2(p):
                return sum((a - b) ** 2 for a, b in zip(p, query))

            want = sorted(d2(k) for k in reference)[:9]
            assert [round(d2(k), 10) for k, _ in got] == [
                round(w, 10) for w in want
            ]

    def test_exact_match_first(self):
        tree = PHTreeF(dims=2)
        tree.put((1.0, 1.0), "here")
        tree.put((1.1, 1.0), "near")
        got = tree.knn((1.0, 1.0), 1)
        assert got == [((1.0, 1.0), "here")]

    def test_nan_query_rejected(self):
        tree = PHTreeF(dims=1)
        tree.put((1.0,))
        with pytest.raises(ValueError):
            tree.knn((float("nan"),), 1)

    def test_knn_with_mixed_magnitudes(self):
        # Node regions spanning exponent ranges must still produce valid
        # lower bounds (the clamped-region decode path).
        tree = PHTreeF(dims=1)
        values = [1e-300, 1e-10, 1.0, 1e10, 1e300, -1e300, -1.0]
        for v in values:
            tree.put((v,))
        got = tree.knn((0.5,), 3)
        want = sorted(values, key=lambda v: abs(v - 0.5))[:3]
        assert [k[0] for k, _ in got] == want


class TestPropertyRoundTrip:
    @given(
        st.lists(
            st.tuples(finite, finite), min_size=1, max_size=40, unique=True
        )
    )
    @settings(max_examples=40)
    def test_all_inserted_points_are_found(self, points):
        tree = PHTreeF(dims=2)
        expected = {}
        for p in points:
            folded = tuple(0.0 if v == 0.0 else v for v in p)
            tree.put(p, repr(p))
            expected[folded] = repr(p)
        assert len(tree) == len(expected)
        for p, value in expected.items():
            assert tree.get(p) == value
        tree.check_invariants()
