"""Stateful property test: the PH-tree versus a dict model under arbitrary
interleaved insert/update/delete/query sequences, with structural
invariants checked after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import PHTree

WIDTH = 8
DIMS = 2

keys = st.tuples(
    st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
    st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
)
values = st.integers(min_value=0, max_value=999)


class PHTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tree = PHTree(dims=DIMS, width=WIDTH)
        self.model = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        expected_previous = self.model.get(key)
        got_previous = self.tree.put(key, value)
        assert got_previous == expected_previous
        self.model[key] = value

    @rule(key=keys)
    def remove_maybe_missing(self, key):
        if key in self.model:
            assert self.tree.remove(key) == self.model.pop(key)
        else:
            assert self.tree.remove(key, default="absent") == "absent"

    @rule(data=st.data())
    def remove_existing(self, data):
        if not self.model:
            return
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.remove(key) == self.model.pop(key)

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.get(key, default="absent") == self.model.get(
            key, "absent"
        )
        assert self.tree.contains(key) == (key in self.model)

    @rule(data=st.data())
    def move(self, data):
        if not self.model:
            return
        old_key = data.draw(st.sampled_from(sorted(self.model)))
        new_key = data.draw(keys)
        if new_key in self.model and new_key != old_key:
            return
        self.tree.update_key(old_key, new_key)
        self.model[new_key] = self.model.pop(old_key)

    @rule(low=keys, data=st.data())
    def window_query(self, low, data):
        high = (
            data.draw(st.integers(low[0], (1 << WIDTH) - 1)),
            data.draw(st.integers(low[1], (1 << WIDTH) - 1)),
        )
        got = sorted(self.tree.query(low, high))
        want = sorted(
            (key, value)
            for key, value in self.model.items()
            if low[0] <= key[0] <= high[0] and low[1] <= key[1] <= high[1]
        )
        assert got == want

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_is_valid(self):
        self.tree.check_invariants()


TestPHTreeStateful = PHTreeMachine.TestCase
TestPHTreeStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
