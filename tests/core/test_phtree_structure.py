"""Structural properties of the PH-tree (paper Sections 3.4 and 3.6):
order independence, bounded depth, bounded imbalance, node-count bounds,
the two space worst cases of Figure 4, and the best case of Figure 5."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree, collect_stats
from repro.core.node import Node
from repro.core.serialize import serialize_tree


def build(keys, dims, width, **kwargs):
    tree = PHTree(dims=dims, width=width, **kwargs)
    for key in keys:
        tree.put(key)
    return tree


small_keys = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=80,
)


class TestOrderIndependence:
    """'The internal structure of the PH-tree is determined only by the
    data, not by order of insertion or deletion of entries.'"""

    @given(small_keys)
    @settings(max_examples=50)
    def test_insertion_order_does_not_matter(self, keys):
        shuffled = list(keys)
        random.Random(7).shuffle(shuffled)
        a = build(keys, dims=2, width=8)
        b = build(shuffled, dims=2, width=8)
        assert serialize_tree(a) == serialize_tree(b)

    @given(small_keys, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_deletions_leave_canonical_structure(self, keys, seed):
        """insert(A+B) then delete(B) == insert(A)."""
        rng = random.Random(seed)
        keys = list(dict.fromkeys(keys))
        keep = [k for k in keys if rng.random() < 0.5]
        extra = [k for k in keys if k not in set(keep)]
        direct = build(keep, dims=2, width=8)
        roundabout = build(keep + extra, dims=2, width=8)
        for key in extra:
            roundabout.remove(key)
        roundabout.check_invariants()
        assert serialize_tree(direct) == serialize_tree(roundabout)


class TestDepthBounds:
    """'The maximum depth of the tree is independent of k and equal to the
    number of bits in the longest stored value.'"""

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_depth_bounded_by_width(self, width):
        rng = random.Random(1)
        keys = [
            (rng.randrange(1 << width), rng.randrange(1 << width))
            for _ in range(500)
        ]
        tree = build(keys, dims=2, width=width)
        stats = collect_stats(tree)
        assert stats.max_depth <= width

    def test_adversarial_chain_depth(self):
        # Keys engineered to diverge one bit at a time: a maximal chain.
        width = 16
        keys = [(0,)] + [(1 << b,) for b in range(width)]
        tree = build(keys, dims=1, width=width)
        stats = collect_stats(tree)
        assert stats.max_depth <= width
        tree.check_invariants()


class TestNodeBounds:
    def test_every_tree_has_more_entries_than_nodes(self):
        # Paper Section 3.4: r_e/n > 1.0 for n > 1.
        rng = random.Random(2)
        for dims in (1, 2, 3):
            keys = {
                tuple(rng.randrange(256) for _ in range(dims))
                for _ in range(300)
            }
            tree = build(keys, dims=dims, width=8)
            stats = collect_stats(tree)
            assert stats.n_entries > stats.n_nodes

    def test_non_root_nodes_have_two_plus_slots(self, small_tree):
        tree, _ = small_tree
        for node in tree.nodes():
            if node is not tree.root:
                assert node.num_slots() >= 2


class TestPaperWorstCases:
    def test_figure_4a_no_prefix_sharing(self):
        """A fully filled root with no sub-nodes: every 1-bit-deep entry
        sits in the root (the 'no prefix sharing' worst case)."""
        tree = PHTree(dims=2, width=1)
        for x in (0, 1):
            for y in (0, 1):
                tree.put((x, y))
        stats = collect_stats(tree)
        assert stats.n_nodes == 1
        assert stats.n_entries == 4
        # Fully filled -> HC representation.
        assert tree.root.container.is_hc

    def test_figure_4b_powers_of_two(self):
        """The entries {0,1,2,4,8}: every value deviates from the shared
        prefix at a different bit -> worst entry-to-node ratio 5/4."""
        keys = [(0,), (1,), (2,), (4,), (8,)]
        tree = build(keys, dims=1, width=4)
        stats = collect_stats(tree)
        assert stats.n_entries == 5
        assert stats.n_nodes == 4
        assert stats.entry_to_node_ratio == pytest.approx(1.25)

    def test_figure_5_best_case(self):
        """All 2**k sub-nodes fully filled with maximal prefixes: 4-bit 2D
        keys whose middle bits are fixed per quadrant."""
        tree = PHTree(dims=2, width=4)
        # One full quadrant: keys 0b01??, 0b10?? fixed prefix 0110/1001.
        for dx in (0, 1):
            for dy in (0, 1):
                tree.put((0b0110 | dx, 0b1000 | dy))
        stats = collect_stats(tree)
        # Root plus one dense sub-node holding all four entries.
        assert stats.n_nodes == 2
        sub = [n for n in tree.nodes() if n.post_len == 0][0]
        assert sub.num_slots() == 4
        assert sub.post_len == 0
        assert sub.container.is_hc


class TestUpdateLocality:
    """'Upon modification, at most two nodes of the tree need to be
    modified.'"""

    def _snapshot(self, tree):
        # Nodes are keyed by (post_len, prefix) -- the logical identity
        # of a PH-tree node position, stable across both storage engines
        # (the arena engine rebuilds shadow objects per access, so
        # ``id()`` is not usable).  infix_len is deliberately excluded:
        # it is path metadata fully derived from the parent/child
        # post_len difference (a splice above a node shortens its infix
        # without touching its content).
        def slot_id(slot):
            if isinstance(slot, Node):
                return ("n", slot.post_len, slot.prefix)
            return ("e", slot.key)

        return {
            (node.post_len, node.prefix): tuple(
                (a, slot_id(s)) for a, s in node.items()
            )
            for node in tree.nodes()
        }

    @given(small_keys, st.tuples(st.integers(0, 255), st.integers(0, 255)))
    @settings(max_examples=50)
    def test_insert_touches_at_most_two_nodes(self, keys, new_key):
        tree = build(keys, dims=2, width=8)
        if tree.contains(new_key):
            return
        before = self._snapshot(tree)
        tree.put(new_key)
        after = self._snapshot(tree)
        changed = sum(
            1
            for node_id, state in after.items()
            if node_id in before and before[node_id] != state
        )
        created = sum(1 for node_id in after if node_id not in before)
        assert changed <= 1  # parent whose slot changed
        assert created <= 1  # possibly one new split node

    @given(small_keys, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_delete_touches_at_most_two_nodes(self, keys, seed):
        keys = list(dict.fromkeys(keys))
        if not keys:
            return
        victim = keys[random.Random(seed).randrange(len(keys))]
        tree = build(keys, dims=2, width=8)
        before = self._snapshot(tree)
        tree.remove(victim)
        after = self._snapshot(tree)
        changed = sum(
            1
            for node_id, state in after.items()
            if node_id in before and before[node_id] != state
        )
        removed = sum(1 for node_id in before if node_id not in after)
        assert changed <= 2  # node losing the entry + parent on merge
        assert removed <= 1


class TestRootInvariants:
    def test_root_sits_at_top_bit(self):
        tree = PHTree(dims=3, width=32)
        tree.put((1, 2, 3))
        assert tree.root.post_len == 31
        assert tree.root.infix_len == 0

    def test_single_entry_root_survives_merges(self):
        tree = PHTree(dims=1, width=8)
        tree.put((1,))
        tree.put((2,))
        tree.remove((2,))
        tree.check_invariants()
        assert len(tree) == 1
        assert tree.contains((1,))
