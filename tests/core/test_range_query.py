"""Range-query correctness: brute-force equivalence, mask/naive traversal
agreement, edge boxes, iterator laziness (paper Section 3.5)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PHTree
from tests.conftest import brute_force_range


class TestEmptyAndTrivial:
    def test_empty_tree(self):
        tree = PHTree(dims=2, width=8)
        assert tree.query_all((0, 0), (255, 255)) == []

    def test_inverted_box_is_empty(self):
        tree = PHTree(dims=2, width=8)
        tree.put((5, 5))
        assert tree.query_all((10, 0), (0, 255)) == []

    def test_point_box(self):
        tree = PHTree(dims=2, width=8)
        tree.put((5, 5), "v")
        assert tree.query_all((5, 5), (5, 5)) == [((5, 5), "v")]
        assert tree.query_all((6, 6), (6, 6)) == []

    def test_full_range_returns_everything(self, small_tree):
        tree, reference = small_tree
        full = tree.query_all((0, 0, 0), ((1 << 16) - 1,) * 3)
        assert len(full) == len(reference)
        assert {k for k, _ in full} == set(reference)


class TestBruteForceEquivalence:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_random_boxes(self, dims):
        width = 12
        rng = random.Random(dims * 101)
        reference = {}
        tree = PHTree(dims=dims, width=width)
        for _ in range(600):
            key = tuple(rng.randrange(1 << width) for _ in range(dims))
            tree.put(key, rng.random())
            reference[key] = True
        for _ in range(40):
            lo = tuple(rng.randrange(1 << width) for _ in range(dims))
            hi = tuple(
                min(v + rng.randrange(1 << 10), (1 << width) - 1)
                for v in lo
            )
            got = sorted(k for k, _ in tree.query(lo, hi))
            assert got == brute_force_range(reference, lo, hi)

    def test_skewed_data(self):
        # Clustered keys (common prefixes) exercise deep nodes.
        rng = random.Random(5)
        tree = PHTree(dims=2, width=16)
        reference = {}
        for centre in (1000, 30000, 65000):
            for _ in range(200):
                key = (
                    max(0, min(65535, centre + rng.randrange(-8, 9))),
                    max(0, min(65535, centre + rng.randrange(-8, 9))),
                )
                tree.put(key)
                reference[key] = True
        for centre in (1000, 30000, 65000):
            lo = (centre - 5, centre - 5)
            hi = (centre + 5, centre + 5)
            got = sorted(k for k, _ in tree.query(lo, hi))
            assert got == brute_force_range(reference, lo, hi)

    @given(st.data())
    @settings(max_examples=40)
    def test_property_boxes(self, data):
        width = 8
        keys = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, 255),
                    st.integers(0, 255),
                ),
                max_size=60,
            )
        )
        tree = PHTree(dims=2, width=width)
        for key in keys:
            tree.put(key)
        lo = (
            data.draw(st.integers(0, 255)),
            data.draw(st.integers(0, 255)),
        )
        hi = (
            data.draw(st.integers(lo[0], 255)),
            data.draw(st.integers(lo[1], 255)),
        )
        reference = {k: True for k in keys}
        assert sorted(k for k, _ in tree.query(lo, hi)) == (
            brute_force_range(reference, lo, hi)
        )


class TestMaskedVersusNaive:
    def test_same_results(self, small_tree):
        tree, _ = small_tree
        rng = random.Random(9)
        for _ in range(25):
            lo = tuple(rng.randrange(1 << 16) for _ in range(3))
            hi = tuple(
                min(v + rng.randrange(1 << 13), (1 << 16) - 1) for v in lo
            )
            masked = sorted(k for k, _ in tree.query(lo, hi))
            naive = sorted(
                k for k, _ in tree.query(lo, hi, use_masks=False)
            )
            assert masked == naive


class TestResultOrdering:
    def test_masked_results_in_z_order_1d(self):
        tree = PHTree(dims=1, width=8)
        for v in (200, 5, 120, 64, 33):
            tree.put((v,))
        got = [k[0] for k, _ in tree.query((0,), (255,))]
        assert got == sorted(got)


class TestLaziness:
    def test_iterator_is_lazy(self, small_tree):
        tree, _ = small_tree
        iterator = tree.query((0, 0, 0), ((1 << 16) - 1,) * 3)
        first = next(iterator)
        assert first is not None
        # Consuming only part of the iterator must be fine.
        for _, __ in zip(range(5), iterator):
            pass

    def test_query_returns_iterator_not_list(self, small_tree):
        tree, _ = small_tree
        result = tree.query((0, 0, 0), (10, 10, 10))
        assert iter(result) is result


class TestValidation:
    def test_box_dimensionality_checked(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(ValueError):
            list(tree.query((0,), (255, 255)))
        with pytest.raises(ValueError):
            list(tree.query((0, 0), (255,)))

    def test_box_range_checked(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(ValueError):
            list(tree.query((0, 0), (256, 255)))


class TestPaperWorstCase:
    def test_low_selectivity_boolean_dimension(self):
        """Paper Section 3.5: a query constraining only a boolean-like
        dimension degenerates to a scan but must stay correct."""
        rng = random.Random(11)
        tree = PHTree(dims=2, width=8)
        reference = {}
        for _ in range(300):
            key = (rng.randrange(2), rng.randrange(256))
            tree.put(key)
            reference[key] = True
        got = sorted(k for k, _ in tree.query((1, 0), (1, 255)))
        assert got == brute_force_range(reference, (1, 0), (1, 255))
