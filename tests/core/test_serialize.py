"""Serialisation round trips, determinism and the value codecs."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.core.serialize import (
    NoneValueCodec,
    U64ValueCodec,
    deserialize_tree,
    serialize_tree,
)


def random_tree(seed, n=300, dims=3, width=16, values=False):
    rng = random.Random(seed)
    tree = PHTree(dims=dims, width=width)
    for _ in range(n):
        key = tuple(rng.randrange(1 << width) for _ in range(dims))
        tree.put(key, rng.randrange(1 << 30) if values else None)
    return tree


class TestRoundTrip:
    def test_empty_tree(self):
        tree = PHTree(dims=4, width=32)
        data = serialize_tree(tree)
        rebuilt = deserialize_tree(data)
        assert len(rebuilt) == 0
        assert rebuilt.dims == 4
        assert rebuilt.width == 32

    def test_single_entry(self):
        tree = PHTree(dims=2, width=8)
        tree.put((3, 200))
        rebuilt = deserialize_tree(serialize_tree(tree))
        assert list(rebuilt.keys()) == [(3, 200)]
        rebuilt.check_invariants()

    @pytest.mark.parametrize("dims,width", [(1, 8), (2, 16), (3, 16),
                                            (5, 8), (2, 64)])
    def test_random_trees(self, dims, width):
        tree = random_tree(dims * 31 + width, dims=dims, width=width)
        rebuilt = deserialize_tree(serialize_tree(tree))
        assert sorted(rebuilt.keys()) == sorted(tree.keys())
        assert len(rebuilt) == len(tree)
        rebuilt.check_invariants()

    def test_rebuilt_tree_is_fully_functional(self):
        tree = random_tree(77)
        rebuilt = deserialize_tree(serialize_tree(tree))
        keys = list(rebuilt.keys())
        # Queries work.
        lo = tuple(min(k[d] for k in keys) for d in range(3))
        hi = tuple(max(k[d] for k in keys) for d in range(3))
        assert sorted(k for k, _ in rebuilt.query(lo, hi)) == sorted(keys)
        # Mutations work.
        rebuilt.remove(keys[0])
        rebuilt.put((1, 2, 3))
        rebuilt.check_invariants()

    def test_reserialization_is_identical(self):
        tree = random_tree(5)
        data = serialize_tree(tree)
        assert serialize_tree(deserialize_tree(data)) == data


class TestDeterminism:
    def test_same_keys_same_bytes(self):
        tree_a = random_tree(9)
        keys = list(tree_a.keys())
        random.Random(1).shuffle(keys)
        tree_b = PHTree(dims=3, width=16)
        for key in keys:
            tree_b.put(key)
        assert serialize_tree(tree_a) == serialize_tree(tree_b)

    def test_different_keys_different_bytes(self):
        tree_a = random_tree(9)
        tree_b = random_tree(10)
        assert serialize_tree(tree_a) != serialize_tree(tree_b)


class TestValueCodecs:
    def test_none_codec_rejects_values(self):
        tree = PHTree(dims=1, width=8)
        tree.put((1,), "a value")
        with pytest.raises(ValueError):
            serialize_tree(tree, NoneValueCodec)

    def test_u64_codec_round_trip(self):
        tree = random_tree(12, values=True)
        data = serialize_tree(tree, U64ValueCodec)
        rebuilt = deserialize_tree(data, U64ValueCodec)
        assert dict(rebuilt.items()) == dict(tree.items())

    def test_u64_codec_validates(self):
        tree = PHTree(dims=1, width=8)
        tree.put((1,), "not an int")
        with pytest.raises(ValueError):
            serialize_tree(tree, U64ValueCodec)
        tree2 = PHTree(dims=1, width=8)
        tree2.put((1,), 1 << 64)
        with pytest.raises(ValueError):
            serialize_tree(tree2, U64ValueCodec)


class TestFormatValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_tree(b"NOPE" + b"\x00" * 32)

    def test_truncation_detected(self):
        tree = random_tree(3)
        data = serialize_tree(tree)
        with pytest.raises((ValueError, IndexError)):
            deserialize_tree(data[: len(data) // 2])

    def test_compactness(self):
        """The serialised image must beat the naive k*8*n layout for data
        with shared prefixes (the whole point of Section 3.4)."""
        rng = random.Random(4)
        tree = PHTree(dims=3, width=64)
        n = 500
        # Clustered data: top 40 bits shared.
        base = (1 << 40) - 1
        for _ in range(n):
            tree.put(
                tuple(
                    (0xABCDE << 44) | rng.randrange(1 << 20)
                    for _ in range(3)
                )
            )
        data = serialize_tree(tree)
        naive = len(tree) * 3 * 8
        assert len(data) < naive
