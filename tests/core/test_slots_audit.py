"""``__slots__`` audit: no core hot-path object may carry a per-instance
``__dict__`` (the paper's pitch is space efficiency; an attribute dict
per node/entry/container would dominate the size model of Section 3.6).
"""

from __future__ import annotations

import pytest

from repro import PHTree
from repro.core.hypercube import HCContainer, LHCContainer
from repro.core.node import Entry, Node


def _instances():
    # (0,0) and (3,3) share a root slot (sub-node); (255,255) stays a
    # direct Entry -- so the root container holds both slot kinds.
    keys = [(0, 0), (3, 3), (255, 255)]
    tree = PHTree(dims=2, width=8, hc_mode="lhc")
    hc_tree = PHTree(dims=2, width=8, hc_mode="hc")
    for key in keys:
        tree.put(key)
        hc_tree.put(key)
    root = tree.root
    slots = [slot for _, slot in root.container.items()]
    entry = next(s for s in slots if s.__class__ is Entry)
    sub = next(s for s in slots if s.__class__ is Node)
    return [
        ("PHTree", tree),
        ("Node", root),
        ("SubNode", sub),
        ("Entry", entry),
        ("LHCContainer", root.container),
        ("HCContainer", hc_tree.root.container),
    ]


@pytest.mark.parametrize(
    "name,obj", _instances(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_no_instance_dict(name, obj):
    assert not hasattr(obj, "__dict__"), (
        f"{name} instances carry a __dict__; add the attribute to "
        f"__slots__ instead"
    )


@pytest.mark.parametrize(
    "cls", [PHTree, Node, Entry, HCContainer, LHCContainer]
)
def test_slots_declared_on_class(cls):
    assert "__slots__" in cls.__dict__


def test_hc_container_is_lhc_container_slotted_everywhere():
    # Slots are only airtight if every class in the MRO is slotted.
    for cls in (PHTree, Node, Entry, HCContainer, LHCContainer):
        for base in cls.__mro__[:-1]:  # skip object
            assert "__slots__" in base.__dict__, (
                f"{cls.__name__} inherits unslotted base {base.__name__}"
            )
