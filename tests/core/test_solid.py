"""Tests for the box index (PHTreeSolidF)."""

from __future__ import annotations

import random

import pytest

from repro.core.solid import PHTreeSolidF


def brute_intersect(boxes, qlo, qhi):
    result = []
    for (blo, bhi), value in boxes.items():
        if all(
            lo <= qh and hi >= ql
            for lo, hi, ql, qh in zip(blo, bhi, qlo, qhi)
        ):
            result.append((blo, bhi, value))
    return sorted(result)


def brute_contained(boxes, qlo, qhi):
    result = []
    for (blo, bhi), value in boxes.items():
        if all(
            ql <= lo and hi <= qh
            for lo, hi, ql, qh in zip(blo, bhi, qlo, qhi)
        ):
            result.append((blo, bhi, value))
    return sorted(result)


@pytest.fixture
def random_boxes():
    rng = random.Random(7)
    solid = PHTreeSolidF(dims=2)
    boxes = {}
    for i in range(400):
        lo = (rng.uniform(0, 0.9), rng.uniform(0, 0.9))
        hi = (lo[0] + rng.uniform(0, 0.1), lo[1] + rng.uniform(0, 0.1))
        solid.put(lo, hi, i)
        boxes[(lo, hi)] = i
    return solid, boxes, rng


class TestBasics:
    def test_put_get_remove(self):
        solid = PHTreeSolidF(dims=2)
        assert solid.put((0.0, 0.0), (1.0, 1.0), "sq") is None
        assert solid.contains((0.0, 0.0), (1.0, 1.0))
        assert solid.get((0.0, 0.0), (1.0, 1.0)) == "sq"
        assert len(solid) == 1
        assert solid.remove((0.0, 0.0), (1.0, 1.0)) == "sq"
        assert len(solid) == 0

    def test_degenerate_point_box(self):
        solid = PHTreeSolidF(dims=2)
        solid.put((0.5, 0.5), (0.5, 0.5), "point")
        got = list(solid.query_intersect((0.0, 0.0), (1.0, 1.0)))
        assert got == [((0.5, 0.5), (0.5, 0.5), "point")]

    def test_inverted_box_rejected(self):
        solid = PHTreeSolidF(dims=2)
        with pytest.raises(ValueError):
            solid.put((1.0, 0.0), (0.0, 1.0))

    def test_remove_missing(self):
        solid = PHTreeSolidF(dims=1)
        with pytest.raises(KeyError):
            solid.remove((0.0,), (1.0,))
        assert solid.remove((0.0,), (1.0,), default="gone") == "gone"

    def test_items(self):
        solid = PHTreeSolidF(dims=1)
        solid.put((0.0,), (1.0,), "a")
        solid.put((2.0,), (3.0,), "b")
        assert sorted(v for _, _, v in solid.items()) == ["a", "b"]


class TestIntersection:
    def test_touching_counts(self):
        solid = PHTreeSolidF(dims=1)
        solid.put((0.0,), (1.0,), "left")
        got = [v for _, _, v in solid.query_intersect((1.0,), (2.0,))]
        assert got == ["left"]

    def test_disjoint_excluded(self):
        solid = PHTreeSolidF(dims=1)
        solid.put((0.0,), (1.0,), "left")
        assert list(solid.query_intersect((1.5,), (2.0,))) == []

    def test_brute_force(self, random_boxes):
        solid, boxes, rng = random_boxes
        for _ in range(20):
            qlo = (rng.uniform(0, 0.8), rng.uniform(0, 0.8))
            qhi = (qlo[0] + 0.2, qlo[1] + 0.2)
            got = sorted(solid.query_intersect(qlo, qhi))
            assert got == brute_intersect(boxes, qlo, qhi)

    def test_stabbing_query(self, random_boxes):
        solid, boxes, rng = random_boxes
        for _ in range(10):
            point = (rng.uniform(0, 1), rng.uniform(0, 1))
            got = sorted(solid.query_point(point))
            assert got == brute_intersect(boxes, point, point)


class TestContainment:
    def test_brute_force(self, random_boxes):
        solid, boxes, rng = random_boxes
        for _ in range(20):
            qlo = (rng.uniform(0, 0.6), rng.uniform(0, 0.6))
            qhi = (qlo[0] + 0.4, qlo[1] + 0.4)
            got = sorted(solid.query_contained(qlo, qhi))
            assert got == brute_contained(boxes, qlo, qhi)

    def test_contained_is_subset_of_intersecting(self, random_boxes):
        solid, _, rng = random_boxes
        qlo, qhi = (0.2, 0.2), (0.7, 0.7)
        contained = set(
            (blo, bhi) for blo, bhi, _ in solid.query_contained(qlo, qhi)
        )
        intersecting = set(
            (blo, bhi) for blo, bhi, _ in solid.query_intersect(qlo, qhi)
        )
        assert contained <= intersecting


class TestDoubledDimensionality:
    def test_point_tree_has_2k_dims(self):
        solid = PHTreeSolidF(dims=3)
        assert solid.point_tree.dims == 6

    def test_invariants(self, random_boxes):
        solid, _, __ = random_boxes
        solid.check_invariants()

    def test_negative_coordinates(self):
        solid = PHTreeSolidF(dims=2)
        solid.put((-2.0, -2.0), (-1.0, -1.0), "neg")
        got = [v for _, _, v in solid.query_intersect((-1.5, -1.5),
                                                      (0.0, 0.0))]
        assert got == ["neg"]
