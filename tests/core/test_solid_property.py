"""Property-based tests for the box index (PHTreeSolidF) against a
brute-force model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solid import PHTreeSolidF

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False
)


@st.composite
def boxes(draw, dims=2):
    lo = [draw(coord) for _ in range(dims)]
    hi = [draw(coord) for _ in range(dims)]
    return (
        tuple(min(a, b) for a, b in zip(lo, hi)),
        tuple(max(a, b) for a, b in zip(lo, hi)),
    )


@given(
    st.lists(boxes(), max_size=30, unique=True),
    boxes(),
)
@settings(max_examples=60, deadline=None)
def test_intersection_equals_brute_force(stored, query):
    solid = PHTreeSolidF(dims=2)
    for i, (lo, hi) in enumerate(stored):
        solid.put(lo, hi, i)
    qlo, qhi = query
    got = sorted(
        (blo, bhi) for blo, bhi, _ in solid.query_intersect(qlo, qhi)
    )
    want = sorted(
        (blo, bhi)
        for blo, bhi in set(stored)
        if all(
            lo <= qh and hi >= ql
            for lo, hi, ql, qh in zip(blo, bhi, qlo, qhi)
        )
    )
    assert got == want


@given(
    st.lists(boxes(), max_size=30, unique=True),
    boxes(),
)
@settings(max_examples=60, deadline=None)
def test_containment_equals_brute_force(stored, query):
    solid = PHTreeSolidF(dims=2)
    for i, (lo, hi) in enumerate(stored):
        solid.put(lo, hi, i)
    qlo, qhi = query
    got = sorted(
        (blo, bhi) for blo, bhi, _ in solid.query_contained(qlo, qhi)
    )
    want = sorted(
        (blo, bhi)
        for blo, bhi in set(stored)
        if all(
            ql <= lo and hi <= qh
            for lo, hi, ql, qh in zip(blo, bhi, qlo, qhi)
        )
    )
    assert got == want


@given(st.lists(boxes(), max_size=30, unique=True))
@settings(max_examples=40, deadline=None)
def test_full_domain_intersection_returns_everything(stored):
    solid = PHTreeSolidF(dims=2)
    for i, (lo, hi) in enumerate(stored):
        solid.put(lo, hi, i)
    got = list(solid.query_intersect((-200.0, -200.0), (200.0, 200.0)))
    assert len(got) == len(set(stored))
    solid.check_invariants()
