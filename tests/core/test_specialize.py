"""Tests for the per-(k, width) specialization layer.

Two concerns:

- correctness: every generated kernel is pinned against the generic
  engine or definitional oracle it replaces -- identical results,
  identical iteration order, identical tree shapes;
- the bounded LRU registry: many tree shapes keep the cache at its cap,
  eviction is least-recently-used, and evicted specializations keep
  working for the trees that hold them.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import specialize
from repro.core.batch import _get_many_plain
from repro.core.bulk import bulk_load
from repro.core.kernel import _range_scan_plain
from repro.core.masks import address_fits, address_successor
from repro.core.node import hypercube_address
from repro.core.phtree import PHTree
from repro.core.specialize import get_spec
from repro.encoding.interleave import deinterleave_naive, interleave_naive


@pytest.fixture(autouse=True)
def _restore_registry():
    cap = specialize.registry_cap()
    yield
    specialize.set_registry_cap(cap)


def _random_tree(k, width, n, seed, **kwargs):
    rng = random.Random(seed)
    tree = PHTree(dims=k, width=width, **kwargs)
    # Never ask for more unique keys than the key space holds.
    n = min(n, (1 << min(k * width, 40)) // 2)
    keys = set()
    while len(keys) < n:
        key = tuple(rng.randrange(1 << width) for _ in range(k))
        if key not in keys:
            keys.add(key)
            tree.put(key, len(keys))
    return tree, keys


@st.composite
def shape(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    width = draw(st.sampled_from([1, 3, 8, 16, 20, 33, 64]))
    return k, width


class TestGeneratedPrimitives:
    @settings(max_examples=30, deadline=None)
    @given(shape(), st.data())
    def test_hc_address_matches_oracle(self, kw, data):
        k, width = kw
        spec = get_spec(k, width)
        key = tuple(
            data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
            for _ in range(k)
        )
        for post in range(width):
            assert spec.hc_address(key, post) == hypercube_address(
                key, post
            )

    @settings(max_examples=30, deadline=None)
    @given(shape(), st.data())
    def test_morton_kernels_match_oracles(self, kw, data):
        k, width = kw
        spec = get_spec(k, width)
        key = tuple(
            data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
            for _ in range(k)
        )
        code = interleave_naive(key, width)
        assert spec.interleave(key) == code
        assert spec.deinterleave(code) == deinterleave_naive(
            code, k, width
        )

    def test_check_key(self):
        spec = get_spec(3, 8)
        assert spec.check_key((1, 2, 255)) == (1, 2, 255)
        assert spec.check_key([1, 2, 3]) == (1, 2, 3)
        assert spec.check_key((1, 2)) is None  # wrong arity
        assert spec.check_key((1, 2, 256)) is None  # out of range
        assert spec.check_key((1, 2, -1)) is None  # negative
        assert spec.check_key((1, 2, "x")) is None  # wrong type
        assert spec.check_key(7) is None  # not iterable
        # Declined, not wrong: bools are valid ints for the tree but the
        # fast path hands them to the exact checker.
        assert spec.check_key((True, 2, 3)) is None

    def test_successor_enumerates_fitting_addresses(self):
        for k in (1, 2, 3, 5):
            full = (1 << k) - 1
            for ml in range(full + 1):
                for mh in range(full + 1):
                    if ml & ~mh:
                        continue  # contradictory masks never occur
                    expected = [
                        a
                        for a in range(full + 1)
                        if address_fits(a, ml, mh)
                    ]
                    walked = []
                    a = ml
                    while a >= 0:
                        walked.append(a)
                        a = address_successor(a, ml, mh)
                    assert walked == expected, (k, ml, mh)


class TestGeneratedEngines:
    @pytest.mark.parametrize(
        "k,width", [(1, 8), (2, 16), (3, 20), (5, 33), (7, 64)]
    )
    def test_put_builds_identical_trees(self, k, width):
        tree, keys = _random_tree(k, width, 300, seed=k * 100 + width)
        generic, _ = _random_tree(
            k, width, 300, seed=k * 100 + width, specialize=False
        )
        assert tree.specialization is not None
        assert generic.specialization is None
        tree.check_invariants()
        zero = (0,) * k
        top = ((1 << width) - 1,) * k
        assert list(_range_scan_plain(tree.root, zero, top)) == list(
            _range_scan_plain(generic.root, zero, top)
        )
        # Reads agree across engines, hits and misses alike.
        rng = random.Random(99)
        probes = list(keys)[:50] + [
            tuple(rng.randrange(1 << width) for _ in range(k))
            for _ in range(50)
        ]
        for key in probes:
            assert tree.get(key) == generic.get(key)
            assert tree.contains(key) == generic.contains(key)

    def test_put_overwrite_and_remove(self):
        tree, keys = _random_tree(3, 16, 200, seed=5)
        some = next(iter(keys))
        assert tree.put(some, "new") is not None
        assert tree.get(some) == "new"
        for key in list(keys)[:100]:
            tree.remove(key)
        tree.check_invariants()

    @pytest.mark.parametrize("k,width", [(1, 8), (3, 20), (5, 33)])
    def test_range_scan_parity(self, k, width):
        tree, _ = _random_tree(k, width, 400, seed=k + width)
        spec = tree.specialization
        rng = random.Random(17)
        for _ in range(40):
            lo = tuple(rng.randrange(1 << width) for _ in range(k))
            hi = tuple(
                min((1 << width) - 1, v + rng.randrange(1 << width))
                for v in lo
            )
            expected = list(_range_scan_plain(tree.root, lo, hi))
            assert (
                list(spec.range_scan_plain(tree.root, lo, hi)) == expected
            )
            for slack in (1, 4):
                assert list(
                    spec.range_scan_plain(tree.root, lo, hi, slack)
                ) == list(_range_scan_plain(tree.root, lo, hi, slack))

    def test_get_many_parity(self):
        tree, keys = _random_tree(3, 20, 500, seed=23)
        rng = random.Random(29)
        batch = list(keys) + [
            tuple(rng.randrange(1 << 20) for _ in range(3))
            for _ in range(200)
        ]
        rng.shuffle(batch)
        spec = tree.specialization
        assert spec.get_many_plain(tree, batch) == _get_many_plain(
            tree, batch
        )
        assert spec.get_many_plain(
            tree, batch, presorted=True
        ) == _get_many_plain(tree, batch, presorted=True)

    def test_knn_order_matches_generic(self):
        tree, keys = _random_tree(3, 16, 300, seed=31)
        generic, _ = _random_tree(3, 16, 300, seed=31, specialize=False)
        rng = random.Random(37)
        for _ in range(10):
            q = tuple(rng.randrange(1 << 16) for _ in range(3))
            assert tree.knn(q, 10) == generic.knn(q, 10)

    def test_bulk_load_matches_put(self):
        rng = random.Random(41)
        entries = {
            tuple(rng.randrange(1 << 20) for _ in range(3)): i
            for i in range(400)
        }
        loaded = bulk_load(list(entries.items()), dims=3, width=20)
        grown = PHTree(dims=3, width=20)
        for key, value in entries.items():
            grown.put(key, value)
        loaded.check_invariants()
        zero, top = (0,) * 3, ((1 << 20) - 1,) * 3
        assert list(_range_scan_plain(loaded.root, zero, top)) == list(
            _range_scan_plain(grown.root, zero, top)
        )

    def test_non_uniform_widths_still_specialize(self):
        tree = PHTree(dims=3, width=(8, 16, 20))
        assert tree.specialization is not None
        rng = random.Random(43)
        reference = {}
        for _ in range(200):
            key = (
                rng.randrange(1 << 8),
                rng.randrange(1 << 16),
                rng.randrange(1 << 20),
            )
            reference[key] = rng.randrange(100)
            tree.put(key, reference[key])
        tree.check_invariants()
        for key, value in reference.items():
            assert tree.get(key) == value
        # Narrow-dimension violations still raise the exact error.
        with pytest.raises(ValueError):
            tree.put((1 << 8, 0, 0))

    def test_error_messages_unchanged(self):
        tree = PHTree(dims=2, width=8)
        generic = PHTree(dims=2, width=8, specialize=False)
        bad = [(1,), (1, 2, 3), (1, 256), (1, -1), (1, "x"), 7]
        for key in bad:
            try:
                generic.put(key)
            except Exception as exc:  # noqa: BLE001
                with pytest.raises(type(exc), match=None) as info:
                    tree.put(key)
                assert str(info.value) == str(exc)
            else:  # pragma: no cover - all cases above must raise
                raise AssertionError(f"{key!r} unexpectedly valid")

    def test_bool_coordinates_accepted(self):
        tree = PHTree(dims=2, width=8)
        tree.put((True, False), "b")
        assert tree.get((1, 0)) == "b"
        assert tree.contains((True, False))


class TestBoundedRegistry:
    def test_cache_hit_returns_same_bundle(self):
        assert get_spec(3, 20) is get_spec(3, 20)

    def test_too_many_dims_fall_back(self):
        assert get_spec(specialize.MAX_SPECIALIZED_DIMS + 1, 8) is None
        tree = PHTree(dims=specialize.MAX_SPECIALIZED_DIMS + 1, width=8)
        assert tree.specialization is None
        key = (1,) * (specialize.MAX_SPECIALIZED_DIMS + 1)
        tree.put(key, "v")
        assert tree.get(key) == "v"

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            get_spec(0, 8)
        with pytest.raises(ValueError):
            get_spec(3, 0)
        with pytest.raises(ValueError):
            specialize.set_registry_cap(-1)
        with pytest.raises(ValueError):
            specialize.set_registry_cap(-64)

    def test_cap_zero_disables_caching(self):
        # Regression: cap 0 used to be rejected; it now cleanly turns
        # the cache off instead of being conflated with "invalid".
        specialize.clear_registry()
        specialize.set_registry_cap(4)
        get_spec(2, 9)
        assert specialize.registry_size() == 1
        specialize.set_registry_cap(0)
        assert specialize.registry_cap() == 0
        assert specialize.registry_size() == 0  # emptied on disable
        # Builds still work, are functional, but are never retained.
        a = get_spec(2, 9)
        b = get_spec(2, 9)
        assert a is not None and b is not None
        assert a is not b  # no caching: every call builds fresh
        assert specialize.registry_size() == 0
        # Trees built while caching is off still specialize fine.
        tree, keys = _random_tree(2, 9, 50, seed=90)
        assert tree.specialization is not None
        for key in list(keys)[:10]:
            assert tree.contains(key)
        # Re-enabling restores normal cache behaviour.
        specialize.set_registry_cap(8)
        assert get_spec(2, 9) is get_spec(2, 9)
        assert specialize.registry_size() == 1

    def test_cap_held_across_100_shapes(self):
        specialize.clear_registry()
        specialize.set_registry_cap(16)
        shapes = [(k, w) for k in range(1, 11) for w in range(5, 15)]
        assert len(shapes) == 100
        for k, w in shapes:
            assert get_spec(k, w) is not None
            assert specialize.registry_size() <= 16
        assert specialize.registry_size() == 16

    def test_lru_eviction_order(self):
        specialize.clear_registry()
        specialize.set_registry_cap(2)
        a = get_spec(2, 5)
        b = get_spec(2, 6)
        # Touch a: it becomes most recently used, so c evicts b, not a.
        assert get_spec(2, 5) is a
        c = get_spec(2, 7)
        assert specialize.registry_size() == 2
        assert get_spec(2, 5) is a  # still cached
        assert get_spec(2, 7) is c  # still cached
        assert get_spec(2, 6) is not b  # evicted: rebuilt fresh

    def test_live_trees_survive_eviction(self):
        specialize.clear_registry()
        specialize.set_registry_cap(1)
        tree, keys = _random_tree(3, 12, 150, seed=47)
        spec = tree.specialization
        # Flood the registry: the tree's bundle is long evicted...
        for w in range(1, 30):
            get_spec(4, w)
        assert specialize.registry_size() == 1
        assert get_spec(3, 12) is not spec
        # ...but the tree keeps working on its own strong reference.
        for key in list(keys)[:20]:
            assert tree.contains(key)
        tree.put((0, 0, 0), "post-eviction")
        assert tree.get((0, 0, 0)) == "post-eviction"
        lo, hi = (0,) * 3, ((1 << 12) - 1,) * 3
        assert sum(1 for _ in tree.query(lo, hi)) == len(keys) + 1

    def test_shrinking_cap_evicts(self):
        specialize.clear_registry()
        specialize.set_registry_cap(8)
        for w in range(1, 9):
            get_spec(2, w)
        assert specialize.registry_size() == 8
        specialize.set_registry_cap(3)
        assert specialize.registry_size() == 3
