"""Tests for tree statistics (paper Sections 3.4, 4.3.5, Table 3)."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, collect_stats
from repro.core.stats import node_serialized_bits


class TestEmptyAndSmall:
    def test_empty_tree(self):
        stats = collect_stats(PHTree(dims=2, width=8))
        assert stats.n_entries == 0
        assert stats.n_nodes == 0
        assert stats.entry_to_node_ratio == 0.0
        assert stats.total_serialized_bits == 0
        assert stats.hc_fraction == 0.0

    def test_single_entry(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2))
        stats = collect_stats(tree)
        assert stats.n_entries == 1
        assert stats.n_nodes == 1
        assert stats.max_depth == 1
        assert stats.depth_histogram == {1: 1}


class TestConsistency:
    def test_counts_agree_with_tree(self, small_tree):
        tree, reference = small_tree
        stats = collect_stats(tree)
        assert stats.n_entries == len(reference)
        assert stats.n_nodes == sum(1 for _ in tree.nodes())
        assert stats.n_hc_nodes + stats.n_lhc_nodes == stats.n_nodes
        assert sum(stats.depth_histogram.values()) == stats.n_nodes
        assert len(stats.node_size_bits) == stats.n_nodes
        assert stats.total_serialized_bits == sum(stats.node_size_bits)

    def test_ratio(self, small_tree):
        tree, _ = small_tree
        stats = collect_stats(tree)
        assert stats.entry_to_node_ratio == pytest.approx(
            stats.n_entries / stats.n_nodes
        )
        # Paper Section 3.4: every tree with n > 1 has ratio > 1.
        assert stats.entry_to_node_ratio > 1.0

    def test_depth_bounded_by_width(self, small_tree):
        tree, _ = small_tree
        assert collect_stats(tree).max_depth <= tree.width

    def test_serialized_size_close_to_actual_serialization(self):
        """The stats' per-node byte sum and the real serialised stream
        must agree within the per-node header/rounding differences."""
        from repro.core.serialize import serialize_tree

        rng = random.Random(21)
        tree = PHTree(dims=3, width=16)
        for _ in range(400):
            tree.put(tuple(rng.randrange(1 << 16) for _ in range(3)))
        stats = collect_stats(tree)
        stream = len(serialize_tree(tree))
        modelled = stats.total_serialized_bytes
        # Same order of magnitude; the stream embeds nodes contiguously
        # while the model rounds each node to bytes and charges JVM-ish
        # reference widths.
        assert 0.3 < modelled / stream < 3.0


class TestValueBits:
    def test_value_bits_increase_size(self, small_tree):
        tree, _ = small_tree
        plain = collect_stats(tree, value_bits=0)
        with_refs = collect_stats(tree, value_bits=32)
        assert (
            with_refs.total_serialized_bits > plain.total_serialized_bits
        )


class TestNodeSerializedBits:
    def test_matches_representation(self):
        tree = PHTree(dims=2, width=8)
        for key in [(0, 0), (0, 255), (255, 0), (255, 255)]:
            tree.put(key)
        root = tree.root
        bits = node_serialized_bits(root, 2)
        assert bits > 0
        # Flipping representation changes the reported size.
        from repro.core.hypercube import convert_container

        converted = convert_container(
            root.container, 2, to_hc=not root.container.is_hc
        )
        if converted is not None:
            root.container = converted
            assert node_serialized_bits(root, 2) != bits


class TestPrefixSharingSignal:
    def test_clustered_data_shares_more_prefix_bits(self):
        rng = random.Random(3)
        scattered = PHTree(dims=2, width=32)
        clustered = PHTree(dims=2, width=32)
        for _ in range(500):
            scattered.put(
                (rng.randrange(1 << 32), rng.randrange(1 << 32))
            )
            base = 0x12345000
            clustered.put(
                (base + rng.randrange(4096), base + rng.randrange(4096))
            )
        s_stats = collect_stats(scattered)
        c_stats = collect_stats(clustered)
        s_bpe = s_stats.total_serialized_bits / s_stats.n_entries
        c_bpe = c_stats.total_serialized_bits / c_stats.n_entries
        assert c_bpe < s_bpe
