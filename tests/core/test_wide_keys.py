"""Keys wider than 64 bits (paper Outlook item 5: "the current limit of
w = 64 could be increased to allow values with arbitrary length").

Python integers are unbounded, so the PH-tree supports any width out of
the box; these tests pin that down for 128- and 256-bit coordinates,
including serialisation and the frozen format.
"""

from __future__ import annotations

import random

import pytest

from repro import PHTree, bulk_load, collect_stats
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.serialize import deserialize_tree, serialize_tree


@pytest.fixture(params=[128, 200, 256], ids=lambda w: f"w{w}")
def wide_tree(request):
    width = request.param
    rng = random.Random(width)
    tree = PHTree(dims=2, width=width)
    reference = {}
    for _ in range(300):
        key = (
            rng.randrange(1 << width),
            rng.randrange(1 << width),
        )
        value = rng.randrange(1000)
        tree.put(key, value)
        reference[key] = value
    return tree, reference, width


class TestWideOperations:
    def test_put_get_remove(self, wide_tree):
        tree, reference, width = wide_tree
        assert len(tree) == len(reference)
        for key, value in list(reference.items())[:50]:
            assert tree.get(key) == value
        victims = list(reference)[:100]
        for key in victims:
            assert tree.remove(key) == reference.pop(key)
        tree.check_invariants()

    def test_depth_bounded_by_width(self, wide_tree):
        tree, _, width = wide_tree
        assert collect_stats(tree).max_depth <= width

    def test_range_query(self, wide_tree):
        tree, reference, width = wide_tree
        half = 1 << (width - 1)
        top = (1 << width) - 1
        got = sorted(k for k, _ in tree.query((0, 0), (half, top)))
        want = sorted(k for k in reference if k[0] <= half)
        assert got == want

    def test_knn(self, wide_tree):
        tree, reference, width = wide_tree
        query = (1 << (width - 1), 1 << (width - 2))
        got = tree.knn(query, 5)

        def d2(key):
            return sum((a - b) ** 2 for a, b in zip(key, query))

        want = sorted(d2(k) for k in reference)[:5]
        assert [d2(k) for k, _ in got] == want

    def test_width_boundary_values(self, wide_tree):
        tree, _, width = wide_tree
        top = (1 << width) - 1
        tree.put((top, top), "corner")
        assert tree.get((top, top)) == "corner"
        with pytest.raises(ValueError):
            tree.put((top + 1, 0))


class TestWideSerialisation:
    def test_round_trip(self, wide_tree):
        from repro.core.serialize import U64ValueCodec

        tree, _, width = wide_tree
        rebuilt = deserialize_tree(
            serialize_tree(tree, U64ValueCodec), U64ValueCodec
        )
        assert rebuilt.width == width
        assert dict(rebuilt.items()) == dict(tree.items())
        rebuilt.check_invariants()

    def test_frozen(self, wide_tree):
        from repro.core.serialize import U64ValueCodec

        tree, reference, width = wide_tree
        frozen = FrozenPHTree(freeze(tree, U64ValueCodec), U64ValueCodec)
        assert len(frozen) == len(reference)
        for key, value in list(reference.items())[:50]:
            assert frozen.get(key) == value

    def test_bulk_load_canonical(self, wide_tree):
        tree, reference, width = wide_tree
        bulk = bulk_load(
            ((k, v) for k, v in reference.items()),
            dims=2,
            width=width,
        )
        from repro.core.serialize import U64ValueCodec

        assert serialize_tree(bulk, U64ValueCodec) == serialize_tree(
            tree, U64ValueCodec
        )


class TestMixedWideWidths:
    def test_per_dimension_beyond_64(self):
        tree = PHTree(dims=3, width=(1, 64, 128))
        key = (1, (1 << 64) - 1, (1 << 128) - 1)
        tree.put(key, "wide")
        assert tree.get(key) == "wide"
        with pytest.raises(ValueError):
            tree.put((2, 0, 0))
        tree.check_invariants()
