"""Tests for the CLUSTER generator (paper Sections 4.2, 4.3.6)."""

from __future__ import annotations

import pytest

from repro.datasets.cluster import (
    CLUSTER_EXTENT,
    DEFAULT_N_CLUSTERS,
    POINTS_PER_CLUSTER,
    default_n_clusters,
    generate_cluster,
)


class TestGeometry:
    def test_non_x_dimensions_hug_the_offset(self):
        for offset in (0.5, 0.4):
            points = generate_cluster(500, 3, offset=offset, seed=1)
            half = CLUSTER_EXTENT / 2 + 1e-12
            for p in points:
                assert abs(p[1] - offset) <= half
                assert abs(p[2] - offset) <= half

    def test_x_axis_spans_zero_to_one(self):
        points = generate_cluster(5000, 2, seed=2)
        xs = [p[0] for p in points]
        assert min(xs) < 0.05
        assert max(xs) > 0.95

    def test_cluster05_straddles_the_exponent_boundary(self):
        """The crucial property of Section 4.3.6: CLUSTER0.5 points lie on
        both sides of 0.5."""
        points = generate_cluster(500, 2, offset=0.5, seed=3)
        below = sum(1 for p in points if p[1] < 0.5)
        above = sum(1 for p in points if p[1] >= 0.5)
        assert below > 50
        assert above > 50

    def test_cluster04_shares_one_exponent(self):
        from repro.encoding.ieee import raw_bits

        points = generate_cluster(500, 2, offset=0.4, seed=3)
        exponents = {
            (raw_bits(p[1]) >> 52) & 0x7FF for p in points
        }
        assert len(exponents) == 1

    def test_points_concentrate_in_clusters(self):
        points = generate_cluster(1000, 2, seed=4, n_clusters=10)
        xs = sorted(p[0] for p in points)
        # With 10 clusters of extent 1e-4 over [0,1], points cover well
        # under 1% of the x-axis.
        coverage = sum(
            1 for a, b in zip(xs, xs[1:]) if b - a > CLUSTER_EXTENT
        )
        assert coverage <= 10


class TestClusterCountScaling:
    def test_default_density(self):
        assert default_n_clusters(100 * DEFAULT_N_CLUSTERS) == (
            DEFAULT_N_CLUSTERS
        )
        assert default_n_clusters(1000) == 1000 // POINTS_PER_CLUSTER
        assert default_n_clusters(5) == 1

    def test_explicit_count_respected(self):
        points = generate_cluster(200, 2, n_clusters=2, seed=5)
        xs = {round(p[0], 2) for p in points}
        assert xs <= {0.0, 1.0}


class TestDeterminismAndValidation:
    def test_deterministic(self):
        assert generate_cluster(100, 3, seed=6) == generate_cluster(
            100, 3, seed=6
        )

    def test_offset_04_and_05_share_x_structure(self):
        a = generate_cluster(100, 3, offset=0.4, seed=7)
        b = generate_cluster(100, 3, offset=0.5, seed=7)
        assert [p[0] for p in a] == [p[0] for p in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_cluster(-1, 2)
        with pytest.raises(ValueError):
            generate_cluster(10, 0)
        with pytest.raises(ValueError):
            generate_cluster(10, 2, n_clusters=0)
        with pytest.raises(ValueError):
            generate_cluster(10, 2, extent=0.0)

    def test_one_dimensional(self):
        points = generate_cluster(50, 1, seed=8)
        assert all(len(p) == 1 for p in points)
