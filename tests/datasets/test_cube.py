"""Tests for the CUBE generator."""

from __future__ import annotations

import pytest

from repro.datasets.cube import generate_cube


class TestGenerateCube:
    def test_shape(self):
        points = generate_cube(100, 5, seed=1)
        assert len(points) == 100
        assert all(len(p) == 5 for p in points)

    def test_range(self):
        points = generate_cube(1000, 3, seed=2)
        assert all(0.0 <= v < 1.0 for p in points for v in p)

    def test_deterministic(self):
        assert generate_cube(50, 2, seed=3) == generate_cube(50, 2, seed=3)

    def test_seed_changes_data(self):
        assert generate_cube(50, 2, seed=3) != generate_cube(50, 2, seed=4)

    def test_roughly_uniform(self):
        points = generate_cube(4000, 2, seed=5)
        # Mean of each coordinate near 0.5.
        for d in range(2):
            mean = sum(p[d] for p in points) / len(points)
            assert 0.45 < mean < 0.55
        # Each quadrant gets roughly a quarter.
        q = sum(1 for p in points if p[0] < 0.5 and p[1] < 0.5)
        assert 0.2 < q / len(points) < 0.3

    def test_empty(self):
        assert generate_cube(0, 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_cube(-1, 3)
        with pytest.raises(ValueError):
            generate_cube(1, 0)
