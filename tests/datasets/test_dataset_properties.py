"""Cross-dataset statistical properties the experiments rely on."""

from __future__ import annotations

import statistics

import pytest

from repro.datasets import (
    generate_cluster,
    generate_cube,
    generate_tiger,
    make_dataset,
)
from repro.encoding.ieee import encode_double


class TestEncodedPrefixStructure:
    """The space experiments hinge on how much encoded prefix the
    datasets share; pin the orderings."""

    @staticmethod
    def shared_prefix_bits(values):
        codes = [encode_double(v) for v in values]
        lo, hi = min(codes), max(codes)
        if lo == hi:
            return 64
        return 64 - (lo ^ hi).bit_length()

    def test_cluster04_shares_more_than_cluster05(self):
        c04 = [p[1] for p in generate_cluster(500, 2, offset=0.4, seed=1)]
        c05 = [p[1] for p in generate_cluster(500, 2, offset=0.5, seed=1)]
        assert self.shared_prefix_bits(c04) > self.shared_prefix_bits(c05)

    def test_cluster05_shares_almost_nothing(self):
        # The exponent flip kills the prefix within ~12 bits.
        c05 = [p[1] for p in generate_cluster(500, 2, offset=0.5, seed=1)]
        assert self.shared_prefix_bits(c05) <= 12

    def test_cube_coordinates_share_sign_bit_only_ish(self):
        xs = [p[0] for p in generate_cube(500, 1, seed=2)]
        # Uniform [0,1): sign and a couple of exponent bits shared.
        assert 1 <= self.shared_prefix_bits(xs) <= 16

    def test_tiger_x_shares_exponent_run(self):
        xs = [p[0] for p in generate_tiger(500, seed=3)]
        # All x in [-125, -65]: same sign, overlapping exponents.
        assert self.shared_prefix_bits(xs) >= 4


class TestDistributionShapes:
    def test_cluster_covers_tiny_volume(self):
        points = generate_cluster(2000, 3, seed=4)
        ys = [p[1] for p in points]
        assert max(ys) - min(ys) < 0.001

    def test_cube_is_spread_out(self):
        points = generate_cube(2000, 3, seed=5)
        ys = [p[1] for p in points]
        assert max(ys) - min(ys) > 0.9

    def test_tiger_stddev_between_extremes(self):
        """TIGER sits between CUBE (uniform) and CLUSTER (degenerate):
        skewed but spanning the map."""
        tiger = generate_tiger(2000, seed=6)
        xs = [p[0] for p in tiger]
        spread = statistics.pstdev(xs) / (max(xs) - min(xs))
        assert 0.05 < spread < 0.35

    def test_same_seed_same_data_across_names(self):
        a = make_dataset("CLUSTER0.5", 100, 3, seed=9)
        b = make_dataset("CLUSTER", 100, 3, seed=9)
        assert a == b  # CLUSTER is an alias for offset 0.5


class TestScaleIndependence:
    def test_prefix_of_larger_generation_matches(self):
        """Growing n must extend the dataset, not reshuffle it --
        the n-sweeps rely on nested prefixes for comparability."""
        small = generate_cube(100, 3, seed=7)
        large = generate_cube(1000, 3, seed=7)
        assert large[:100] == small
