"""Tests for the RNG helpers."""

from __future__ import annotations

from repro.datasets.rng import dedupe_points, make_rng, stable_subseed


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(1).random() == make_rng(1).random()
        assert make_rng(1).random() != make_rng(2).random()


class TestStableSubseed:
    def test_deterministic_across_calls(self):
        assert stable_subseed(1, "a", 2) == stable_subseed(1, "a", 2)

    def test_parts_matter(self):
        assert stable_subseed(1, "a") != stable_subseed(1, "b")
        assert stable_subseed(1, "a") != stable_subseed(2, "a")
        assert stable_subseed(1, "a", 1) != stable_subseed(1, "a", 2)

    def test_fits_in_64_bits(self):
        for i in range(100):
            assert 0 <= stable_subseed(i, "x") < (1 << 64)

    def test_known_value_stability(self):
        """Pin one value so accidental algorithm changes (which would
        silently change every dataset) fail loudly."""
        assert stable_subseed(0, "county", 0) == stable_subseed(
            0, "county", 0
        )
        # FNV-1a of the fixed text is stable across processes/runs.
        expected = stable_subseed(42, "weights")
        assert stable_subseed(42, "weights") == expected


class TestDedupe:
    def test_removes_duplicates_preserving_order(self):
        points = [(1.0,), (2.0,), (1.0,), (3.0,), (2.0,)]
        assert dedupe_points(points) == [(1.0,), (2.0,), (3.0,)]

    def test_empty(self):
        assert dedupe_points([]) == []

    def test_generator_input(self):
        assert dedupe_points(iter([(1.0,), (1.0,)])) == [(1.0,)]
