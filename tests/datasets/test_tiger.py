"""Tests for the TIGER/Line substitute generator."""

from __future__ import annotations

import pytest

from repro.datasets.tiger import TIGER_BBOX, generate_tiger


class TestGenerateTiger:
    def test_exact_count_and_uniqueness(self):
        points = generate_tiger(2000, seed=1)
        assert len(points) == 2000
        assert len(set(points)) == 2000  # duplicates removed, as in paper

    def test_bounding_box(self):
        x_min, x_max, y_min, y_max = TIGER_BBOX
        points = generate_tiger(1000, seed=2)
        for x, y in points:
            assert x_min <= x <= x_max
            assert y_min <= y <= y_max

    def test_deterministic(self):
        assert generate_tiger(500, seed=3) == generate_tiger(500, seed=3)

    def test_county_ordered_loading(self):
        """Points must arrive grouped by county (x ascending between
        county groups is NOT required, but spatial locality is): check
        that consecutive points are usually close together."""
        points = generate_tiger(2000, seed=4)
        close = sum(
            1
            for (x1, y1), (x2, y2) in zip(points, points[1:])
            if abs(x1 - x2) < 3.0 and abs(y1 - y2) < 3.0
        )
        assert close / len(points) > 0.9

    def test_skew(self):
        """Density must vary strongly across counties (log-normal
        weights): the busiest grid cell should hold many times the mean."""
        points = generate_tiger(5000, seed=5)
        from collections import Counter

        cells = Counter(
            (int((x + 125) / 2.5), int((y - 24) / 2.6)) for x, y in points
        )
        busiest = cells.most_common(1)[0][1]
        mean = len(points) / max(1, len(cells))
        assert busiest > 3 * mean

    def test_empty_and_validation(self):
        assert generate_tiger(0) == []
        with pytest.raises(ValueError):
            generate_tiger(-5)
