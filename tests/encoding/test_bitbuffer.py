"""Tests for the bit-stream buffer, including a hypothesis model check
against a plain list-of-bits reference implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.encoding.bitbuffer import BitBuffer


class TestBasics:
    def test_empty(self):
        buf = BitBuffer()
        assert len(buf) == 0
        assert buf.bit_length == 0
        assert buf.byte_length == 0
        assert buf.to_bytes() == b""
        assert buf.to_binary_string() == ""

    def test_append_and_read(self):
        buf = BitBuffer()
        buf.append(0b0010, 4)  # the paper's Figure 1a value
        buf.append(0b1, 1)
        assert buf.read(0, 4) == 0b0010
        assert buf.read(4, 1) == 1
        assert buf.read(0, 5) == 0b00101
        assert len(buf) == 5

    def test_zero_width_fields(self):
        buf = BitBuffer()
        buf.append(0, 0)
        assert len(buf) == 0
        assert buf.read(0, 0) == 0

    def test_read_bit(self):
        buf = BitBuffer()
        buf.append(0b101, 3)
        assert [buf.read_bit(i) for i in range(3)] == [1, 0, 1]

    def test_field_validation(self):
        buf = BitBuffer()
        with pytest.raises(ValueError):
            buf.append(4, 2)  # does not fit
        with pytest.raises(ValueError):
            buf.append(-1, 2)
        with pytest.raises(ValueError):
            buf.append(1, -1)

    def test_read_bounds(self):
        buf = BitBuffer()
        buf.append(0xFF, 8)
        with pytest.raises(IndexError):
            buf.read(1, 8)
        with pytest.raises(IndexError):
            buf.read(-1, 2)


class TestInsertRemove:
    def test_insert_at_front(self):
        buf = BitBuffer()
        buf.append(0b0010, 4)
        buf.insert(0, 0b1, 1)
        assert buf.to_binary_string() == "10010"

    def test_insert_in_middle_shifts_right(self):
        # This is the LHC insert shift of paper Section 3.6.
        buf = BitBuffer()
        buf.append(0b1111, 4)
        buf.insert(2, 0b00, 2)
        assert buf.to_binary_string() == "110011"

    def test_insert_at_end_equals_append(self):
        buf = BitBuffer()
        buf.append(0b10, 2)
        buf.insert(2, 0b1, 1)
        assert buf.to_binary_string() == "101"

    def test_remove_shifts_left(self):
        # The LHC delete shift of paper Section 4.3.4.
        buf = BitBuffer()
        buf.append(0b110011, 6)
        removed = buf.remove(2, 2)
        assert removed == 0b00
        assert buf.to_binary_string() == "1111"

    def test_remove_everything(self):
        buf = BitBuffer()
        buf.append(0b1011, 4)
        assert buf.remove(0, 4) == 0b1011
        assert len(buf) == 0

    def test_insert_remove_round_trip(self):
        buf = BitBuffer()
        buf.append(0xAB, 8)
        before = buf.copy()
        buf.insert(3, 0b101, 3)
        buf.remove(3, 3)
        assert buf == before

    def test_bounds(self):
        buf = BitBuffer()
        buf.append(0xF, 4)
        with pytest.raises(IndexError):
            buf.insert(5, 0, 1)
        with pytest.raises(IndexError):
            buf.remove(3, 2)


class TestOverwrite:
    def test_overwrite_in_place(self):
        buf = BitBuffer()
        buf.append(0b0000, 4)
        buf.overwrite(1, 0b11, 2)
        assert buf.to_binary_string() == "0110"
        assert len(buf) == 4

    def test_bounds(self):
        buf = BitBuffer()
        buf.append(0b00, 2)
        with pytest.raises(IndexError):
            buf.overwrite(1, 0b11, 2)


class TestBytesRoundTrip:
    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=8))
    def test_from_bytes_to_bytes(self, raw, pad):
        bit_length = max(0, len(raw) * 8 - pad)
        buf = BitBuffer.from_bytes(raw, bit_length)
        rebuilt = BitBuffer.from_bytes(buf.to_bytes(), bit_length)
        assert rebuilt == buf

    def test_padding_is_zero(self):
        buf = BitBuffer()
        buf.append(0b111, 3)
        assert buf.to_bytes() == bytes([0b11100000])

    def test_from_bytes_validates(self):
        with pytest.raises(ValueError):
            BitBuffer.from_bytes(b"\x00", 9)


class BitBufferMachine(RuleBasedStateMachine):
    """Model-based check: BitBuffer vs a plain list of bits."""

    @initialize()
    def setup(self):
        self.buf = BitBuffer()
        self.model = []  # list of 0/1 ints, stream order

    @rule(value=st.integers(min_value=0, max_value=(1 << 16) - 1),
          width=st.integers(min_value=0, max_value=16))
    def append(self, value, width):
        value &= (1 << width) - 1
        self.buf.append(value, width)
        self.model.extend(
            (value >> (width - 1 - i)) & 1 for i in range(width)
        )

    @rule(data=st.data(),
          value=st.integers(min_value=0, max_value=(1 << 8) - 1),
          width=st.integers(min_value=0, max_value=8))
    def insert(self, data, value, width):
        pos = data.draw(
            st.integers(min_value=0, max_value=len(self.model))
        )
        value &= (1 << width) - 1
        self.buf.insert(pos, value, width)
        bits = [(value >> (width - 1 - i)) & 1 for i in range(width)]
        self.model[pos:pos] = bits

    @rule(data=st.data())
    def remove(self, data):
        if not self.model:
            return
        pos = data.draw(
            st.integers(min_value=0, max_value=len(self.model) - 1)
        )
        width = data.draw(
            st.integers(min_value=0, max_value=len(self.model) - pos)
        )
        removed = self.buf.remove(pos, width)
        expected_bits = self.model[pos:pos + width]
        del self.model[pos:pos + width]
        expected = 0
        for bit in expected_bits:
            expected = (expected << 1) | bit
        assert removed == expected

    @rule(data=st.data())
    def read(self, data):
        if not self.model:
            return
        pos = data.draw(
            st.integers(min_value=0, max_value=len(self.model) - 1)
        )
        width = data.draw(
            st.integers(min_value=0, max_value=len(self.model) - pos)
        )
        got = self.buf.read(pos, width)
        expected = 0
        for bit in self.model[pos:pos + width]:
            expected = (expected << 1) | bit
        assert got == expected

    @invariant()
    def same_length_and_content(self):
        assert len(self.buf) == len(self.model)
        assert self.buf.to_binary_string() == "".join(
            str(b) for b in self.model
        )


TestBitBufferModel = BitBufferMachine.TestCase
TestBitBufferModel.settings = settings(max_examples=30)
