"""Unit and property tests for repro.encoding.bits."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.bits import (
    bit_at,
    bit_depth_to_pos,
    clear_bit,
    common_prefix_len,
    high_bits_mask,
    low_bits_mask,
    most_significant_diff_bit,
    pos_to_bit_depth,
    set_bit,
    to_binary_string,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBitAt:
    def test_extracts_each_position(self):
        value = 0b1011
        assert [bit_at(value, p) for p in range(4)] == [1, 1, 0, 1]

    def test_positions_beyond_value_are_zero(self):
        assert bit_at(0b1, 63) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            bit_at(1, -1)


class TestSetClearBit:
    def test_set_bit(self):
        assert set_bit(0, 3) == 0b1000

    def test_set_bit_idempotent(self):
        assert set_bit(0b1000, 3) == 0b1000

    def test_clear_bit(self):
        assert clear_bit(0b1010, 3) == 0b0010

    def test_clear_bit_idempotent(self):
        assert clear_bit(0b0010, 3) == 0b0010

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_set_then_clear_round_trips(self, value, pos):
        assert clear_bit(set_bit(value, pos), pos) == clear_bit(value, pos)

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_set_makes_bit_one(self, value, pos):
        assert bit_at(set_bit(value, pos), pos) == 1


class TestMasks:
    def test_low_bits_mask_examples(self):
        assert low_bits_mask(0) == 0
        assert low_bits_mask(1) == 1
        assert low_bits_mask(8) == 0xFF

    def test_high_bits_mask_examples(self):
        assert high_bits_mask(0, 8) == 0
        assert high_bits_mask(8, 8) == 0xFF
        assert high_bits_mask(4, 8) == 0xF0

    def test_high_bits_mask_validates_range(self):
        with pytest.raises(ValueError):
            high_bits_mask(9, 8)

    @given(st.integers(min_value=0, max_value=64))
    def test_masks_complement_each_other(self, n):
        width = 64
        assert (
            high_bits_mask(n, width) | low_bits_mask(width - n)
        ) == low_bits_mask(width)

    @given(st.integers(min_value=0, max_value=64))
    def test_low_bits_mask_popcount(self, n):
        assert bin(low_bits_mask(n)).count("1") == n


class TestDiffBit:
    def test_most_significant_diff_bit(self):
        assert most_significant_diff_bit(0b1000, 0b1010) == 1
        assert most_significant_diff_bit(0, 1) == 0
        assert most_significant_diff_bit(0, 1 << 63) == 63

    def test_equal_values_rejected(self):
        with pytest.raises(ValueError):
            most_significant_diff_bit(7, 7)

    @given(u64, u64)
    def test_symmetry(self, a, b):
        if a == b:
            return
        assert most_significant_diff_bit(a, b) == most_significant_diff_bit(
            b, a
        )

    @given(u64, u64)
    def test_values_agree_above_diff_bit(self, a, b):
        if a == b:
            return
        pos = most_significant_diff_bit(a, b)
        assert (a >> (pos + 1)) == (b >> (pos + 1))
        assert bit_at(a, pos) != bit_at(b, pos)


class TestCommonPrefixLen:
    def test_examples(self):
        assert common_prefix_len(0b1100, 0b1101, 4) == 3
        assert common_prefix_len(0b1100, 0b0100, 4) == 0
        assert common_prefix_len(5, 5, 8) == 8

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            common_prefix_len(1 << 10, 0, 4)

    @given(u64, u64)
    def test_relates_to_diff_bit(self, a, b):
        if a == b:
            assert common_prefix_len(a, b, 64) == 64
        else:
            pos = most_significant_diff_bit(a, b)
            assert common_prefix_len(a, b, 64) == 63 - pos


class TestBitDepthConversion:
    def test_round_trip(self):
        for width in (4, 16, 64):
            for pos in range(width):
                depth = pos_to_bit_depth(pos, width)
                assert 1 <= depth <= width
                assert bit_depth_to_pos(depth, width) == pos

    def test_paper_convention(self):
        # z_b = 1 is the first (most significant) bit.
        assert pos_to_bit_depth(63, 64) == 1
        assert pos_to_bit_depth(0, 64) == 64

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pos_to_bit_depth(64, 64)
        with pytest.raises(ValueError):
            bit_depth_to_pos(0, 64)


class TestToBinaryString:
    def test_paper_figure_1a(self):
        # The paper's example: 2 stored as a 4-bit value is 0010.
        assert to_binary_string(2, 4) == "0010"

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            to_binary_string(16, 4)

    @given(u64)
    def test_round_trips_through_int(self, value):
        assert int(to_binary_string(value, 64), 2) == value
