"""Tests for the chunked bit buffer (Outlook item 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitbuffer import BitBuffer
from repro.encoding.chunked import ChunkedBitBuffer


class TestBasics:
    def test_empty(self):
        buf = ChunkedBitBuffer(chunk_bits=32)
        assert buf.bit_length == 0
        assert len(buf) == 0
        assert buf.chunk_count == 1
        assert buf.to_binary_string() == ""

    def test_append_read(self):
        buf = ChunkedBitBuffer(chunk_bits=16)
        buf.append(0b1011, 4)
        buf.append(0b01, 2)
        assert buf.read(0, 6) == 0b101101
        assert buf.read(4, 2) == 0b01

    def test_chunks_split_as_stream_grows(self):
        buf = ChunkedBitBuffer(chunk_bits=32)
        for i in range(64):
            buf.append(i & 1, 1)
        assert buf.chunk_count >= 2
        assert buf.bit_length == 64

    def test_insert_and_remove_cross_boundary(self):
        buf = ChunkedBitBuffer(chunk_bits=16)
        for _ in range(8):
            buf.append(0b1111, 4)  # 32 bits -> at least 2 chunks
        assert buf.chunk_count >= 2
        # Remove a field spanning the first chunk boundary.
        removed = buf.remove(12, 8)
        assert removed == 0xFF
        assert buf.bit_length == 24
        assert buf.to_binary_string() == "1" * 24

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedBitBuffer(chunk_bits=4)
        buf = ChunkedBitBuffer(chunk_bits=16)
        buf.append(1, 1)
        with pytest.raises(IndexError):
            buf.read(0, 2)
        with pytest.raises(IndexError):
            buf.insert(5, 0, 1)
        with pytest.raises(IndexError):
            buf.remove(0, 2)

    def test_to_bitbuffer_flattens(self):
        buf = ChunkedBitBuffer(chunk_bits=8)
        for value in (0xA, 0xB, 0xC):
            buf.append(value, 4)
        flat = buf.to_bitbuffer()
        assert flat.to_binary_string() == buf.to_binary_string()


class TestDifferentialAgainstMonolithic:
    @given(st.integers(0, 2**32), st.integers(8, 64))
    @settings(max_examples=25, deadline=None)
    def test_random_operation_streams(self, seed, chunk_bits):
        rng = random.Random(seed)
        mono = BitBuffer()
        chunked = ChunkedBitBuffer(chunk_bits=chunk_bits)
        for _ in range(300):
            op = rng.random()
            length = mono.bit_length
            if op < 0.5 or length == 0:
                width = rng.randrange(0, 13)
                value = rng.randrange(1 << width) if width else 0
                mono.append(value, width)
                chunked.append(value, width)
            elif op < 0.75:
                pos = rng.randrange(0, length + 1)
                width = rng.randrange(0, 9)
                value = rng.randrange(1 << width) if width else 0
                mono.insert(pos, value, width)
                chunked.insert(pos, value, width)
            else:
                pos = rng.randrange(0, length)
                width = rng.randrange(0, min(9, length - pos) + 1)
                assert mono.remove(pos, width) == chunked.remove(
                    pos, width
                )
        assert mono.to_binary_string() == chunked.to_binary_string()
        if mono.bit_length:
            for _ in range(20):
                pos = rng.randrange(mono.bit_length)
                width = rng.randrange(
                    0, min(16, mono.bit_length - pos) + 1
                )
                assert mono.read(pos, width) == chunked.read(pos, width)


class TestUpdateCostMotivation:
    def test_insert_touches_one_chunk(self):
        """The structural property the paper's Outlook predicts: an
        insert rewrites a single chunk, leaving all other chunk objects
        untouched."""
        buf = ChunkedBitBuffer(chunk_bits=64)
        for i in range(512):
            buf.append(i & 1, 1)
        chunk_ids_before = [id(c) for c in buf._chunks]
        buf.insert(buf.bit_length // 2, 0b1, 1)
        chunk_ids_after = [id(c) for c in buf._chunks]
        # All chunks except (at most) the touched/split one are the same
        # objects.
        unchanged = len(
            set(chunk_ids_before) & set(chunk_ids_after)
        )
        assert unchanged >= len(chunk_ids_before) - 1
