"""Tests for the IEEE-754 sortable conversion (paper Section 3.3).

Includes the exact reproduction of the paper's Table 4 and the
property-based proof of the sortability requirement: ``i1 > i2`` iff
``f1 > f2`` (with -0.0 eliminated).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.ieee import (
    decode_double,
    decode_point,
    encode_double,
    encode_point,
    java_double_to_long_bits,
    java_sortable_long,
    raw_bits,
    raw_bits_to_double,
)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
all_ordered_doubles = st.floats(allow_nan=False, allow_infinity=True)


class TestTable4:
    """The paper's Table 4, bit for bit."""

    PAPER = {
        0.39999: 4600877199177713619,
        0.40000: 4600877379321698714,
        0.49999: 4602678639028661817,
        0.50000: 4602678819172646912,
    }

    @pytest.mark.parametrize("value,expected", sorted(PAPER.items()))
    def test_signed_long_bits(self, value, expected):
        assert java_double_to_long_bits(value) == expected

    def test_exponent_changes_at_one_half(self):
        # 0.49999 -> 0.5 flips the exponent (bits 2..12 of the double).
        exp = lambda v: (raw_bits(v) >> 52) & 0x7FF  # noqa: E731
        assert exp(0.49999) != exp(0.5)
        assert exp(0.39999) == exp(0.4)

    def test_fraction_of_one_half_is_zero(self):
        assert raw_bits(0.5) & ((1 << 52) - 1) == 0

    def test_cluster04_diverges_at_bit_25(self):
        # The paper: CLUSTER0.4 points "differ only at the 25th bit".
        diff = raw_bits(0.39999) ^ raw_bits(0.40000)
        first_diff_from_msb = 64 - diff.bit_length() + 1
        assert first_diff_from_msb == 25

    def test_cluster05_diverges_in_exponent(self):
        # CLUSTER0.5 points "differ ... at the 11th or 12th bit".
        diff = raw_bits(0.49999) ^ raw_bits(0.50000)
        first_diff_from_msb = 64 - diff.bit_length() + 1
        assert first_diff_from_msb in (11, 12)


class TestJavaConversion:
    """The paper's `c(double)` function, signed-comparison variant."""

    def test_non_negative_passthrough(self):
        assert java_sortable_long(1.5) == java_double_to_long_bits(1.5)

    def test_negative_zero_folded(self):
        assert java_sortable_long(-0.0) == java_sortable_long(0.0)

    @given(finite_doubles, finite_doubles)
    def test_signed_sortability(self, f1, f2):
        i1, i2 = java_sortable_long(f1), java_sortable_long(f2)
        if f1 > f2:
            assert i1 > i2
        elif f1 < f2:
            assert i1 < i2


class TestEncodeDouble:
    """The unsigned-comparison variant used by the PH-tree."""

    def test_zero_is_midpoint(self):
        assert encode_double(0.0) == 1 << 63

    def test_negative_zero_folded(self):
        assert encode_double(-0.0) == encode_double(0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_double(float("nan"))

    def test_infinities_are_extremes(self):
        lo = encode_double(float("-inf"))
        hi = encode_double(float("inf"))
        assert lo < encode_double(0.0) < hi

    def test_code_range(self):
        for v in (-1e308, -1.0, -1e-300, 0.0, 1e-300, 1.0, 1e308):
            assert 0 <= encode_double(v) < (1 << 64)

    @given(all_ordered_doubles, all_ordered_doubles)
    def test_unsigned_sortability(self, f1, f2):
        i1, i2 = encode_double(f1), encode_double(f2)
        if f1 > f2:
            assert i1 > i2
        elif f1 < f2:
            assert i1 < i2
        else:
            assert i1 == i2

    @given(all_ordered_doubles)
    def test_round_trip(self, value):
        decoded = decode_double(encode_double(value))
        if value == 0.0:
            assert decoded == 0.0  # -0.0 folds to +0.0
            assert math.copysign(1.0, decoded) == 1.0
        else:
            assert decoded == value

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_double(1 << 64)
        with pytest.raises(ValueError):
            decode_double(-1)


class TestRawBits:
    @given(finite_doubles)
    def test_round_trip(self, value):
        assert raw_bits_to_double(raw_bits(value)) == value

    def test_known_pattern(self):
        assert raw_bits(1.0) == 0x3FF0000000000000

    def test_reject_out_of_range(self):
        with pytest.raises(ValueError):
            raw_bits_to_double(1 << 64)


class TestPointHelpers:
    def test_encode_point_componentwise(self):
        point = (0.5, -1.25, 0.0)
        assert encode_point(point) == tuple(encode_double(v) for v in point)

    @given(st.lists(finite_doubles, min_size=1, max_size=6))
    def test_point_round_trip(self, values):
        decoded = decode_point(encode_point(values))
        for original, got in zip(values, decoded):
            if original == 0.0:
                assert got == 0.0
            else:
                assert got == original
