"""Tests for Morton/z-order interleaving."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.interleave import deinterleave, interleave


class TestInterleaveExamples:
    def test_single_dimension_is_identity(self):
        assert interleave([0b1011], 4) == 0b1011

    def test_two_dimensions(self):
        # MSB of dim 0 leads: (11, 00) -> 1010.
        assert interleave([0b11, 0b00], 2) == 0b1010
        assert interleave([0b00, 0b11], 2) == 0b0101

    def test_three_dimensions(self):
        # Layers: (1,0,0) then (1,1,0) -> 100 110.
        assert interleave([0b11, 0b01, 0b00], 2) == 0b100110

    def test_paper_figure_2_addressing(self):
        # The 2D entry (0..., 1...) has its first bit-layer at HC address
        # 01 (paper Figure 2); the interleaved code leads with 01.
        code = interleave([0b0001, 0b1000], 4)
        assert (code >> 6) == 0b01

    def test_validates_width(self):
        with pytest.raises(ValueError):
            interleave([4], 2)
        with pytest.raises(ValueError):
            interleave([1], 0)
        with pytest.raises(ValueError):
            interleave([], 4)
        with pytest.raises(ValueError):
            interleave([-1], 4)


class TestDeinterleaveExamples:
    def test_inverse_of_examples(self):
        assert deinterleave(0b1010, 2, 2) == (0b11, 0b00)
        assert deinterleave(0b100110, 3, 2) == (0b11, 0b01, 0b00)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            deinterleave(1 << 8, 2, 2)
        with pytest.raises(ValueError):
            deinterleave(0, 0, 2)
        with pytest.raises(ValueError):
            deinterleave(0, 2, 0)
        with pytest.raises(ValueError):
            deinterleave(-1, 2, 2)


@st.composite
def key_and_width(draw):
    width = draw(st.integers(min_value=1, max_value=64))
    k = draw(st.integers(min_value=1, max_value=8))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=k,
            max_size=k,
        )
    )
    return values, width


class TestRoundTrip:
    @given(key_and_width())
    def test_deinterleave_inverts_interleave(self, case):
        values, width = case
        code = interleave(values, width)
        assert deinterleave(code, len(values), width) == tuple(values)

    @given(key_and_width())
    def test_code_fits_k_times_width_bits(self, case):
        values, width = case
        code = interleave(values, width)
        assert 0 <= code < (1 << (len(values) * width))

    @given(key_and_width(), key_and_width())
    def test_order_preserved_in_first_dimension_prefix(self, case_a, case_b):
        # With equal non-leading dimensions, ordering by dim 0 is preserved
        # by the interleaved code (dim 0 owns the most significant bit of
        # every layer).
        values_a, width = case_a
        values_b, _ = case_b
        if len(values_a) != len(values_b):
            return
        shared_tail = values_a[1:]
        a = [values_a[0]] + shared_tail
        b = [values_b[0] % (1 << width)] + shared_tail
        code_a = interleave(a, width)
        code_b = interleave(b, width)
        if a[0] < b[0]:
            assert code_a < code_b
        elif a[0] > b[0]:
            assert code_a > code_b
        else:
            assert code_a == code_b


class TestCritBitMotivation:
    def test_boolean_16d_keys_differ_within_first_layer(self):
        """The paper's Section 2 example: locating a key in a
        16-dimensional boolean dataset needs only one hypercube layer --
        all information is in the first 16 interleaved bits."""
        k, width = 16, 1
        a = interleave([1] * k, width)
        b = interleave([1] * (k - 1) + [0], width)
        assert a != b
        assert a >> k == b >> k == 0  # single layer
