"""Differential tests: table-based interleave vs the definitional
per-bit oracle."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.interleave import (
    deinterleave,
    interleave,
    interleave_naive,
    spread,
)


class TestSpread:
    def test_examples(self):
        assert spread(0b1, 3, 8) == 0b1
        assert spread(0b11, 3, 8) == 0b1001
        assert spread(0xFF, 1, 8) == 0xFF

    def test_multi_byte(self):
        # Bit 8 must land at position 8 * k.
        assert spread(1 << 8, 4, 16) == 1 << 32

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=1, max_value=8),
    )
    def test_bit_positions(self, value, k):
        result = spread(value, k, 64)
        for i in range(64):
            assert ((result >> (i * k)) & 1) == ((value >> i) & 1)


@st.composite
def key_case(draw):
    width = draw(st.integers(min_value=1, max_value=64))
    k = draw(st.integers(min_value=1, max_value=8))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=k,
            max_size=k,
        )
    )
    return values, width


class TestFastEqualsNaive:
    @given(key_case())
    def test_same_codes(self, case):
        values, width = case
        assert interleave(values, width) == interleave_naive(
            values, width
        )

    @given(key_case())
    def test_round_trip(self, case):
        values, width = case
        code = interleave(values, width)
        assert deinterleave(code, len(values), width) == tuple(values)

    def test_extremes(self):
        top = (1 << 64) - 1
        assert interleave([top, 0, top], 64) == interleave_naive(
            [top, 0, top], 64
        )
