"""Property tests for the shared byte lookup tables: every LUT kernel
pinned against the definitional per-bit oracles, including k=1,
width=64, and max-value edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.interleave import (
    deinterleave,
    deinterleave_naive,
    interleave,
    interleave_naive,
)
from repro.encoding.lut import (
    compact_plan,
    compact_table,
    spread_plan,
    spread_table,
)


@st.composite
def key_case(draw):
    width = draw(st.integers(min_value=1, max_value=64))
    k = draw(st.integers(min_value=1, max_value=10))
    top = (1 << width) - 1
    values = draw(
        st.lists(
            # Bias towards the extremes where table-boundary bugs live.
            st.one_of(
                st.integers(min_value=0, max_value=top),
                st.sampled_from([0, top, top >> 1, 1]),
            ),
            min_size=k,
            max_size=k,
        )
    )
    return tuple(values), width


class TestTables:
    def test_spread_identity_stride_1(self):
        assert spread_table(1) == tuple(range(256))

    def test_spread_examples(self):
        assert spread_table(2)[0b111] == 0b10101
        assert spread_table(3)[0b11] == 0b1001

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=12),
    )
    def test_spread_bit_positions(self, byte, k):
        spread = spread_table(k)[byte]
        for i in range(8):
            assert (spread >> (i * k)) & 1 == (byte >> i) & 1
        # No stray bits anywhere else.
        assert spread.bit_count() == byte.bit_count()

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=12),
    )
    def test_compact_inverts_spread_per_byte(self, byte, k):
        # Reassemble the byte from its spread form through the phased
        # compact tables: compact_plan must exactly invert the spread.
        spread = spread_table(k)[byte]
        out = 0
        for in_shift, table, out_shift in compact_plan(k, 8):
            out |= table[(spread >> in_shift) & 0xFF] << out_shift
        assert out == byte

    def test_table_validation(self):
        with pytest.raises(ValueError):
            spread_table(0)
        with pytest.raises(ValueError):
            compact_table(0)
        with pytest.raises(ValueError):
            compact_table(3, phase=3)
        with pytest.raises(ValueError):
            compact_table(3, phase=-1)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            spread_plan(2, 0)
        with pytest.raises(ValueError):
            compact_plan(2, 0)

    def test_tables_are_shared_objects(self):
        # lru_cache makes repeated lookups return the same tuple: the
        # whole process shares one table per (k, phase).
        assert spread_table(3) is spread_table(3)
        assert compact_table(5, 2) is compact_table(5, 2)

    def test_compact_plan_skips_dead_bytes(self):
        # With stride > 8 some bytes of the input hold no stride-aligned
        # bit at all and must not appear in the plan.
        plan = compact_plan(16, 8)
        assert len(plan) < (16 * 8 + 7) // 8


class TestLutVsNaive:
    @given(key_case())
    def test_interleave_matches_naive(self, case):
        values, width = case
        assert interleave(values, width) == interleave_naive(
            values, width
        )

    @given(key_case())
    def test_deinterleave_matches_naive(self, case):
        values, width = case
        code = interleave_naive(values, width)
        k = len(values)
        expected = deinterleave_naive(code, k, width)
        assert deinterleave(code, k, width) == expected
        assert expected == values

    @given(key_case())
    def test_round_trip(self, case):
        values, width = case
        k = len(values)
        assert deinterleave(interleave(values, width), k, width) == values

    def test_k1_passthrough(self):
        for width in (1, 8, 20, 64):
            top = (1 << width) - 1
            for v in (0, 1, top >> 1, top):
                assert interleave((v,), width) == v
                assert deinterleave(v, 1, width) == (v,)

    def test_width_64_max_values(self):
        top = (1 << 64) - 1
        for k in (1, 2, 3, 7):
            values = (top,) * k
            code = interleave(values, 64)
            assert code == interleave_naive(values, 64)
            assert code == (1 << (64 * k)) - 1
            assert deinterleave(code, k, 64) == values

    def test_single_high_bit(self):
        # The MSB of dimension 0 is the MSB of the code.
        for k in (2, 3, 5):
            for width in (8, 20, 33, 64):
                values = (1 << (width - 1),) + (0,) * (k - 1)
                code = interleave(values, width)
                assert code == 1 << (k * width - 1)
                assert deinterleave(code, k, width) == values
