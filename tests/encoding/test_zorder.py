"""Tests for BIGMIN/LITMAX and the CB-tree z-order skip-scan."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.interleave import deinterleave, interleave
from repro.encoding.zorder import bigmin, litmax, z_in_box


@st.composite
def box_and_code(draw):
    k = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.integers(min_value=2, max_value=4))
    lo = [draw(st.integers(0, (1 << width) - 1)) for _ in range(k)]
    hi = [draw(st.integers(v, (1 << width) - 1)) for v in lo]
    code = draw(st.integers(0, (1 << (k * width)) - 1))
    return k, width, lo, hi, code


def brute_next(lo, hi, code, k, width, direction):
    space = 1 << (k * width)
    rng = (
        range(code + 1, space)
        if direction > 0
        else range(code - 1, -1, -1)
    )
    for candidate in rng:
        point = deinterleave(candidate, k, width)
        if all(l <= v <= h for v, l, h in zip(point, lo, hi)):
            return candidate
    return None


class TestBigMin:
    def test_paper_style_example(self):
        # 2D, 3-bit: box [1,5]x[1,5]; scanning past (7,0) must re-enter.
        lo, hi = [1, 1], [5, 5]
        zmin, zmax = interleave(lo, 3), interleave(hi, 3)
        out = interleave([7, 0], 3)
        nxt = bigmin(zmin, zmax, out, 2, 3)
        assert nxt is not None
        assert z_in_box(nxt, zmin, zmax, 2, 3)
        assert nxt > out

    def test_beyond_box_returns_none(self):
        zmin, zmax = interleave([1, 1], 3), interleave([2, 2], 3)
        assert bigmin(zmin, zmax, zmax, 2, 3) is None
        assert bigmin(zmin, zmax, (1 << 6) - 1, 2, 3) is None

    @given(box_and_code())
    @settings(max_examples=200, deadline=None)
    def test_equals_brute_force(self, case):
        k, width, lo, hi, code = case
        zmin, zmax = interleave(lo, width), interleave(hi, width)
        got = bigmin(zmin, zmax, code, k, width)
        assert got == brute_next(lo, hi, code, k, width, +1)

    @given(box_and_code())
    @settings(max_examples=200, deadline=None)
    def test_litmax_equals_brute_force(self, case):
        k, width, lo, hi, code = case
        zmin, zmax = interleave(lo, width), interleave(hi, width)
        got = litmax(zmin, zmax, code, k, width)
        assert got == brute_next(lo, hi, code, k, width, -1)


class TestZInBox:
    def test_corners_inclusive(self):
        zmin, zmax = interleave([1, 1], 3), interleave([5, 5], 3)
        assert z_in_box(zmin, zmin, zmax, 2, 3)
        assert z_in_box(zmax, zmin, zmax, 2, 3)

    def test_z_interval_membership_is_not_box_membership(self):
        """The pitfall BIGMIN exists to solve: codes between the corner
        codes need not lie in the box."""
        lo, hi = [1, 1], [5, 5]
        zmin, zmax = interleave(lo, 3), interleave(hi, 3)
        outlier = interleave([7, 0], 3)
        assert zmin < outlier < zmax
        assert not z_in_box(outlier, zmin, zmax, 2, 3)


class TestCritBitZOrderQuery:
    def test_matches_scan_query(self):
        from repro.baselines.critbit import CritBitTree

        rng = random.Random(3)
        tree = CritBitTree(dims=2)
        for _ in range(1500):
            tree.put((rng.uniform(-1, 1), rng.uniform(-1, 1)))
        for _ in range(25):
            lo = (rng.uniform(-1, 0.5), rng.uniform(-1, 0.5))
            hi = (lo[0] + rng.uniform(0, 0.6), lo[1] + rng.uniform(0, 0.6))
            scan = sorted(p for p, _ in tree.query(lo, hi))
            skip = sorted(p for p, _ in tree.query_zorder(lo, hi))
            assert scan == skip

    def test_results_in_z_order(self):
        from repro.baselines.critbit import CritBitTree
        from repro.encoding.ieee import encode_point

        rng = random.Random(4)
        tree = CritBitTree(dims=2)
        for _ in range(500):
            tree.put((rng.uniform(0, 1), rng.uniform(0, 1)))
        results = [
            p
            for p, _ in tree.query_zorder((0.2, 0.2), (0.8, 0.8))
        ]
        codes = [
            interleave(encode_point(p), 64) for p in results
        ]
        assert codes == sorted(codes)

    def test_empty_and_degenerate(self):
        from repro.baselines.critbit import CritBitTree

        tree = CritBitTree(dims=2)
        assert list(tree.query_zorder((0.0, 0.0), (1.0, 1.0))) == []
        tree.put((0.5, 0.5), "x")
        assert list(tree.query_zorder((0.5, 0.5), (0.5, 0.5))) == [
            ((0.5, 0.5), "x")
        ]
        assert list(tree.query_zorder((0.6, 0.0), (0.4, 1.0))) == []

    def test_ceiling_matches_sorted_codes(self):
        from repro.baselines.critbit import CritBitTree, _Inner

        rng = random.Random(5)
        tree = CritBitTree(dims=2)
        for _ in range(800):
            tree.put((rng.uniform(-2, 2), rng.uniform(-2, 2)))
        codes = []

        def collect(node):
            if isinstance(node, _Inner):
                collect(node.left)
                collect(node.right)
            else:
                codes.append(node.code)

        collect(tree._root)
        codes.sort()
        import bisect

        for _ in range(300):
            probe = rng.randrange(1 << 128)
            got = tree._ceiling(probe)
            i = bisect.bisect_left(codes, probe)
            want = codes[i] if i < len(codes) else None
            assert (got.code if got else None) == want
