"""API quality gates: every public item carries documentation, module
layout stays sane, and the package's public surface is importable."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.encoding",
    "repro.baselines",
    "repro.memory",
    "repro.datasets",
    "repro.workloads",
    "repro.bench",
    "repro.tool",
]


def _walk_modules():
    names = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.add(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue  # entry points execute on import by design
            names.add(f"{package_name}.{info.name}")
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    undocumented = []
    for name in dir(module):
        if name.startswith("_"):
            continue
        if exported is not None and name not in exported:
            continue
        obj = getattr(module, name)
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for member_name, member in inspect.getmembers(obj):
                    if member_name.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(member)
                        or isinstance(member, property)
                    ):
                        continue
                    if not inspect.getdoc(member):
                        undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )


class TestPublicSurface:
    def test_dunder_all_matches_reality(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        assert repro.__version__

    def test_headline_classes_importable(self):
        from repro import (  # noqa: F401
            FrozenPHTree,
            PHTree,
            PHTreeF,
            PHTreeMultiMap,
            PHTreeSolidF,
            SynchronizedPHTree,
            bulk_load,
            collect_stats,
            freeze,
        )
