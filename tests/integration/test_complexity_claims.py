"""Empirical verification of the paper's complexity claims (§3.5-3.6).

These tests measure structural quantities (search-path lengths, node
visits) rather than wall-clock time, so they are deterministic and
CI-safe.
"""

from __future__ import annotations

import random

import pytest

from repro import PHTree, collect_stats
from repro.core.node import Node


def search_path_length(tree: PHTree, key) -> int:
    """Number of nodes visited by a point query for ``key``."""
    node = tree.root
    visits = 0
    key = tuple(key)
    while node is not None:
        visits += 1
        slot = node.get_slot(node.address_of(key))
        if slot is None or not isinstance(slot, Node):
            return visits
        if not slot.matches_prefix(key):
            return visits + 1
        node = slot
    return visits


class TestPointQueryComplexity:
    """§3.5: point queries traverse at most w nodes."""

    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_path_bounded_by_width(self, width):
        rng = random.Random(width)
        tree = PHTree(dims=2, width=width)
        keys = [
            (rng.randrange(1 << width), rng.randrange(1 << width))
            for _ in range(2000)
        ]
        for key in keys:
            tree.put(key)
        for key in keys[:200]:
            assert search_path_length(tree, key) <= width

    def test_path_growth_is_logarithmic_not_linear(self):
        """§4.3.2: 'very little decrease in performance for large
        datasets' -- the average search path grows like log(n), far
        slower than n."""
        rng = random.Random(7)
        keys = [
            (rng.randrange(1 << 32), rng.randrange(1 << 32))
            for _ in range(16000)
        ]

        def average_path(n):
            tree = PHTree(dims=2, width=32)
            for key in keys[:n]:
                tree.put(key)
            sample = keys[: min(n, 500)]
            return sum(
                search_path_length(tree, k) for k in sample
            ) / len(sample)

        small = average_path(1000)
        large = average_path(16000)
        # 16x the data: path grows by far less than 16x (log2(16) = 4
        # extra levels at most for random data).
        assert large - small <= 5.0
        assert large / small < 2.0

    def test_boolean_hypercube_single_node(self):
        """§2: one node suffices for 16D boolean data (the binary trie
        needs up to 16)."""
        tree = PHTree(dims=16, width=1)
        rng = random.Random(3)
        keys = {
            tuple(rng.randrange(2) for _ in range(16))
            for _ in range(200)
        }
        for key in keys:
            tree.put(key)
        for key in list(keys)[:50]:
            assert search_path_length(tree, key) == 1


class TestUpdateComplexity:
    """§3.6: update cost is O(w*k) = O(log n_max), independent of n."""

    def test_max_possible_entries_bound(self):
        # n_max = 2**(k*w): the paper's framing of O(w*k) as O(log n_max).
        tree = PHTree(dims=2, width=4)
        # Fill the entire key space: 2**(2*4) = 256 entries.
        for x in range(16):
            for y in range(16):
                tree.put((x, y))
        assert len(tree) == 256
        tree.check_invariants()
        stats = collect_stats(tree)
        assert stats.max_depth <= 4

    def test_degeneration_bounded_by_width(self):
        """§3.6: 'degeneration of the tree is inherently limited to w'
        even for adversarial insertion orders."""
        width = 16
        tree = PHTree(dims=1, width=width)
        # Sorted insertion: the kD-tree killer; harmless here.
        for v in range(2000):
            tree.put((v,))
        assert collect_stats(tree).max_depth <= width

    def test_node_count_bounded_by_entries(self):
        """A PH-tree never has more nodes than entries (for n > 1),
        §3.4's r_e/n > 1."""
        rng = random.Random(11)
        for k in (1, 3, 8):
            tree = PHTree(dims=k, width=16)
            for _ in range(500):
                tree.put(
                    tuple(rng.randrange(1 << 16) for _ in range(k))
                )
            stats = collect_stats(tree)
            assert stats.n_nodes < stats.n_entries


class TestRangeQueryComplexity:
    def test_best_case_output_sensitive(self):
        """§3.5 best case: a fully matching subtree is emitted without
        per-entry checks -- output-sensitive enumeration."""
        tree = PHTree(dims=2, width=16)
        rng = random.Random(13)
        # Dense cluster sharing a 8-bit prefix.
        base = 0xAB00
        cluster = {
            (base | rng.randrange(256), base | rng.randrange(256))
            for _ in range(400)
        }
        for key in cluster:
            tree.put(key)
        tree.put((0, 0))
        got = list(tree.query((base, base), (base | 255, base | 255)))
        assert len(got) == len(cluster)

    def test_worst_case_is_full_scan_but_correct(self):
        """§3.5 worst case: low-selectivity boolean dimension."""
        tree = PHTree(dims=2, width=8)
        rng = random.Random(17)
        reference = set()
        for _ in range(500):
            key = (rng.randrange(2), rng.randrange(256))
            tree.put(key)
            reference.add(key)
        got = {k for k, _ in tree.query((1, 0), (1, 255))}
        assert got == {k for k in reference if k[0] == 1}
