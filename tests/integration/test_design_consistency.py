"""DESIGN.md consistency: the per-experiment index must reference real
bench files, and every module named in the inventory must exist."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DESIGN = (ROOT / "DESIGN.md").read_text()


class TestExperimentIndex:
    def test_bench_targets_exist(self):
        targets = set(
            re.findall(r"`(benchmarks/bench_[\w]+\.py)", DESIGN)
        )
        assert targets, "DESIGN.md must index the bench targets"
        for target in targets:
            assert (ROOT / target).exists(), target

    def test_every_bench_file_is_indexed_or_generic(self):
        indexed = set(
            re.findall(r"`benchmarks/(bench_[\w]+\.py)", DESIGN)
        )
        on_disk = {
            p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
        }
        missing = on_disk - indexed
        assert not missing, (
            f"bench files not referenced in DESIGN.md: {sorted(missing)}"
        )

    def test_registered_experiments_appear_in_design(self):
        from repro.bench.experiments import REGISTRY

        for exp_id in REGISTRY:
            assert exp_id in DESIGN, (
                f"experiment {exp_id} missing from DESIGN.md"
            )


class TestModuleInventory:
    def test_inventory_modules_exist(self):
        modules = set(
            re.findall(
                r"`((?:core|encoding|baselines|memory|datasets|"
                r"workloads|bench|tool)/[\w]+\.py)`",
                DESIGN,
            )
        )
        assert len(modules) >= 20
        for module in modules:
            assert (ROOT / "src" / "repro" / module).exists(), module


class TestDeliverableFilesPresent:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "LICENSE",
            "CITATION.cff",
            "pyproject.toml",
            "docs/ARCHITECTURE.md",
            "docs/RESULTS_GALLERY.md",
            "examples/quickstart.py",
        ],
    )
    def test_exists(self, path):
        assert (ROOT / path).exists(), path
