"""Run the doctests embedded in the library's docstrings."""

from __future__ import annotations

import doctest
import importlib

import pytest

# Imported by name via importlib: attribute access like
# `repro.encoding.interleave` can be shadowed by the package re-exporting
# a same-named function.
MODULE_NAMES = [
    "repro.encoding.bits",
    "repro.encoding.ieee",
    "repro.encoding.interleave",
    "repro.encoding.bitbuffer",
    "repro.core.node",
    "repro.core.phtree",
    "repro.core.phtree_float",
    "repro.core.concurrent",
    "repro.baselines.interface",
    "repro.baselines.kdtree",
    "repro.baselines.kdtree_bucket",
    "repro.baselines.critbit",
    "repro.baselines.patricia",
    "repro.memory.model",
    "repro.datasets.cube",
    "repro.datasets.cluster",
    "repro.datasets.tiger",
    "repro.workloads.point_queries",
    "repro.workloads.range_queries",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{module_name}: {results.failed} doctest(s) failed"
    )


def test_doctest_coverage_is_nontrivial():
    """The suite must actually exercise examples, not vacuously pass."""
    finder = doctest.DocTestFinder()
    total_examples = 0
    for module_name in MODULE_NAMES:
        module = importlib.import_module(module_name)
        total_examples += sum(
            len(test.examples) for test in finder.find(module)
        )
    assert total_examples > 30
