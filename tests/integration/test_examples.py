"""Every example script must run to completion as a subprocess."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their output"
