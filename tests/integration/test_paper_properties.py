"""Integration tests asserting the paper's *qualitative* claims at
reproduction scale.  These are the headline behaviours the evaluation in
Section 4 demonstrates; each test cites the claim it checks."""

from __future__ import annotations

import random

import pytest

from repro import PHTree, collect_stats
from repro.baselines import make_index
from repro.datasets import generate_cluster, generate_cube, generate_tiger
from repro.memory.report import space_report
from repro.workloads import make_cluster_boxes


class TestSpaceClaims:
    def test_ph_beats_kd_trees_on_space(self):
        """Table 1: 'requiring significantly less space than structures
        such as the kD-tree'."""
        points = generate_cube(4000, 3, seed=1)
        report = space_report(
            "CUBE", points, ("PH", "KD1", "KD2"), dims=3
        )
        assert report.per_structure["PH"] < report.per_structure["KD1"]
        assert report.per_structure["PH"] < report.per_structure["KD2"]

    def test_ph_competitive_with_object_array(self):
        """Table 1: PH-tree space 'comparable or below storage of the same
        data in non-index structures' (object[])."""
        points = generate_cluster(8000, 3, offset=0.4, seed=2)
        report = space_report(
            "CLUSTER0.4", points, ("PH", "o[]"), dims=3
        )
        assert report.per_structure["PH"] < 1.6 * report.per_structure[
            "o[]"
        ]

    def test_cluster05_costs_more_than_cluster04(self):
        """Section 4.3.6: the 0.5 offset crosses an exponent boundary and
        costs space; the effect grows with k."""
        ratios = {}
        for k in (3, 10):
            ph04 = make_index("PH", dims=k)
            ph05 = make_index("PH", dims=k)
            for p in generate_cluster(4000, k, offset=0.4, seed=3):
                ph04.put(p)
            for p in generate_cluster(4000, k, offset=0.5, seed=3):
                ph05.put(p)
            ratios[k] = (
                ph05.bytes_per_entry() / ph04.bytes_per_entry()
            )
        assert ratios[3] > 1.0
        assert ratios[10] > ratios[3]

    def test_cluster05_node_explosion(self):
        """Table 3: at k=10, CLUSTER0.5 needs several times the nodes of
        CLUSTER0.4."""
        k, n = 10, 8000
        counts = {}
        for offset in (0.4, 0.5):
            index = make_index("PH", dims=k)
            for p in generate_cluster(n, k, offset=offset, seed=4):
                index.put(p)
            counts[offset] = collect_stats(index.tree.int_tree).n_nodes
        assert counts[0.5] > 2 * counts[0.4]

    def test_bytes_per_entry_falls_with_n(self):
        """Figure 7a discussion / Table 2: growing prefix sharing makes
        the PH-tree *more* space-efficient as the data densifies (fixed
        spatial extent, growing n -- the paper's setting, where the same
        18.4M-point region is loaded at increasing n)."""
        small = make_index("PH", dims=3)
        large = make_index("PH", dims=3)
        for p in generate_cluster(1000, 3, n_clusters=20, seed=5):
            small.put(p)
        for p in generate_cluster(16000, 3, n_clusters=20, seed=5):
            large.put(p)
        assert large.bytes_per_entry() < small.bytes_per_entry()


class TestStructuralClaims:
    def test_hc_nodes_emerge_in_dense_low_k_trees(self):
        """Section 4.3.1: with small k and a dense tree 'the increasing
        switching from LHC to HC in most of the nodes'."""
        index = make_index("PH", dims=2)
        for p in generate_tiger(6000, seed=6):
            index.put(p)
        stats = collect_stats(index.tree.int_tree)
        assert stats.n_hc_nodes > 0

    def test_cube_high_k_prefers_lhc(self):
        """Section 4.3.7: 'linear scaling with the CUBE dataset due to
        the prevalent LHC representation'."""
        index = make_index("PH", dims=10)
        for p in generate_cube(3000, 10, seed=7):
            index.put(p)
        stats = collect_stats(index.tree.int_tree)
        assert stats.n_lhc_nodes > stats.n_hc_nodes

    def test_depth_bounded_by_width_not_by_k(self):
        """Section 3.5: depth <= w for any k (binary tries pay k*w)."""
        for k in (2, 8, 15):
            index = make_index("PH", dims=k)
            for p in generate_cube(1000, k, seed=8):
                index.put(p)
            assert collect_stats(index.tree.int_tree).max_depth <= 64


class TestQueryClaims:
    def test_cluster_range_queries_ph_visits_less_than_cb_scan(self):
        """Section 4.3.3: CB-tree range queries approach full scans while
        the PH-tree touches only matching clusters.  We assert the
        observable effect: identical results, and PH returns lazily."""
        k, n = 3, 4000
        points = generate_cluster(n, k, offset=0.5, seed=9)
        ph = make_index("PH", dims=k)
        cb = make_index("CB1", dims=k)
        for p in points:
            ph.put(p)
            cb.put(p)
        for lo, hi in make_cluster_boxes(k, 5, seed=10):
            got_ph = sorted(p for p, _ in ph.query(lo, hi))
            got_cb = sorted(p for p, _ in cb.query(lo, hi))
            assert got_ph == got_cb

    def test_point_queries_agree_across_all_structures(self):
        points = generate_tiger(3000, seed=11)
        rng = random.Random(12)
        indexes = [
            make_index(name, dims=2)
            for name in ("PH", "KD1", "KD2", "CB1", "CB2")
        ]
        for p in points:
            for index in indexes:
                index.put(p)
        probes = points[::10] + [
            (rng.uniform(-125, -65), rng.uniform(24, 50))
            for _ in range(100)
        ]
        for probe in probes:
            answers = {index.contains(probe) for index in indexes}
            assert len(answers) == 1


class TestUpdateClaims:
    def test_insertion_time_flat_in_n(self):
        """Section 4.3.1/3.6: insertion cost is 'largely independent of
        the number of entries'.  Compare per-op time of the first and the
        last tranche of a large load; allow generous noise."""
        import time

        points = generate_cube(30000, 3, seed=13)
        tree = PHTree(dims=3, width=64)
        from repro.encoding.ieee import encode_point

        encoded = [encode_point(p) for p in points]

        def tranche(batch):
            start = time.perf_counter()
            for key in batch:
                tree.put(key)
            return (time.perf_counter() - start) / len(batch)

        first = tranche(encoded[:5000])
        for key in encoded[5000:25000]:
            tree.put(key)
        last = tranche(encoded[25000:])
        assert last < 3.0 * first

    def test_no_rebalancing_means_stable_subtrees(self):
        """Section 3.6: updates touch at most two nodes; unrelated
        subtrees must be physically untouched."""
        tree = PHTree(dims=2, width=16)
        rng = random.Random(14)
        for _ in range(2000):
            tree.put((rng.randrange(1 << 16), rng.randrange(1 << 16)))
        node_ids_before = {id(n) for n in tree.nodes()}
        tree.put((7, 7))
        node_ids_after = {id(n) for n in tree.nodes()}
        # All old nodes survive; at most one new node appears.
        assert node_ids_before <= node_ids_after
        assert len(node_ids_after - node_ids_before) <= 1
