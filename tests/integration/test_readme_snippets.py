"""Execute the README's Python code blocks — documentation that runs."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    return blocks


BLOCKS = python_blocks()


def test_readme_has_python_examples():
    assert len(BLOCKS) >= 2


@pytest.mark.parametrize(
    "index", range(len(BLOCKS)), ids=lambda i: f"block{i}"
)
def test_readme_block_executes(index):
    namespace = {}
    exec(compile(BLOCKS[index], f"README block {index}", "exec"),
         namespace)


def test_readme_quickstart_block_behaves():
    """The first block's claims (comments) must match reality."""
    from repro import PHTreeF

    tree = PHTreeF(dims=2)
    tree.put((48.8566, 2.3522), "Paris")
    tree.put((47.3769, 8.5417), "Zurich")
    assert tree.get((47.3769, 8.5417)) == "Zurich"
    window = list(tree.query((46.0, 2.0), (49.0, 9.0)))
    assert {name for _, name in window} == {"Paris", "Zurich"}
    assert tree.knn((48.0, 8.0), 1)[0][1] == "Zurich"
    tree.remove((48.8566, 2.3522))
    assert len(tree) == 1


def test_cli_commands_in_readme_are_real():
    """Every `python -m repro...` module named in the README must be
    importable (entry points excluded from execution)."""
    import importlib

    text = README.read_text()
    modules = set(re.findall(r"python -m (repro[\w.]*)", text))
    assert modules  # README must document the CLIs
    for module_name in modules:
        importlib.import_module(module_name)
