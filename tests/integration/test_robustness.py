"""Robustness: corrupted inputs must fail loudly and promptly, never
hang or crash the interpreter."""

from __future__ import annotations

import random

import pytest

from repro import PHTree
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.serialize import deserialize_tree, serialize_tree


@pytest.fixture
def stream():
    rng = random.Random(23)
    tree = PHTree(dims=2, width=16)
    for _ in range(200):
        tree.put((rng.randrange(1 << 16), rng.randrange(1 << 16)))
    return serialize_tree(tree), tree


class TestSerializedStreamCorruption:
    def test_truncations(self, stream):
        data, _ = stream
        for cut in (5, len(data) // 4, len(data) // 2, len(data) - 3):
            with pytest.raises((ValueError, IndexError)):
                deserialize_tree(data[:cut])

    def test_random_bit_flips_bounded_behaviour(self, stream):
        """A flipped bit either raises a decode error or yields a tree
        object -- never an unbounded loop or interpreter error.  (A
        corrupted payload can decode into *different* but well-formed
        data; detecting that requires checksums, which the format
        deliberately omits, as the paper's does.)"""
        data, _ = stream
        rng = random.Random(29)
        header_len = 4 + 20  # magic + k/w/size/bits
        for _ in range(40):
            position = rng.randrange(header_len, len(data))
            bit = 1 << rng.randrange(8)
            corrupted = bytearray(data)
            corrupted[position] ^= bit
            try:
                tree = deserialize_tree(bytes(corrupted))
            except (ValueError, IndexError, OverflowError):
                continue
            # Decoded into something: it must be a finite, walkable tree.
            count = sum(1 for _ in tree.items())
            assert count <= len(tree) + 1000

    def test_header_size_lies_detected(self, stream):
        data, tree = stream
        corrupted = bytearray(data)
        # Zero the size field (bytes 8..16 of the header after magic).
        for i in range(8, 16):
            corrupted[4 + i - 8 + 4] = 0  # noqa: simple header poke
        with pytest.raises((ValueError, IndexError)):
            result = deserialize_tree(bytes(corrupted))
            # A zero-size claim with a node stream must be rejected.
            if len(result) == 0:
                raise ValueError("accepted inconsistent header")


class TestFrozenCorruption:
    def test_truncated_frozen_stream(self, stream):
        _, tree = stream
        data = freeze(tree)
        for cut in (6, len(data) // 3, len(data) - 2):
            with pytest.raises((ValueError, IndexError)):
                frozen = FrozenPHTree(data[:cut])
                # Lazy decoding: force a full traversal.
                list(frozen.items())

    def test_wrong_magic_rejected_for_both_formats(self, stream):
        data, tree = stream
        with pytest.raises(ValueError):
            FrozenPHTree(data)  # PHT1 magic given to the PHF1 reader
        with pytest.raises(ValueError):
            deserialize_tree(freeze(tree))  # and vice versa


class TestApiAbuse:
    def test_query_iterators_survive_interleaved_reads(self, stream):
        _, tree = stream
        top = (1 << 16) - 1
        first = tree.query((0, 0), (top, top))
        second = tree.query((0, 0), (top, top))
        # Interleaved consumption of two live iterators over one tree.
        a = sum(1 for _ in zip(first, second))
        assert a == len(tree)

    def test_huge_n_knn_terminates(self, stream):
        _, tree = stream
        got = tree.knn((0, 0), n=10**9)
        assert len(got) == len(tree)

    def test_empty_key_rejected(self):
        tree = PHTree(dims=2, width=8)
        with pytest.raises(ValueError):
            tree.put(())

    def test_generator_keys_accepted(self):
        tree = PHTree(dims=2, width=8)
        tree.put(iter((1, 2)), "gen")
        assert tree.get((1, 2)) == "gen"
