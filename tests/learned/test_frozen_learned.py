"""FrozenPHTree with a learned trailer: exactness and fallback.

Every learned-path answer is compared against the exact frozen descent
and the live tree -- identical results, including iteration order and
kNN tie-breaks, are the acceptance bar.  The adversarial cases force
the model into its fallback so the exactness contract is exercised on
both sides of the bound.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.phtree import PHTree
from repro.core.serialize import U64ValueCodec
from repro.obs import probes


def _tree(keys, dims, width):
    tree = PHTree(dims=dims, width=width)
    for i, key in enumerate(keys):
        tree.put(key, i)
    return tree


def _cube_keys(n, dims, width, seed=0):
    rng = random.Random(seed)
    top = 1 << width
    return list({
        tuple(rng.randrange(top) for _ in range(dims))
        for _ in range(n)
    })


def _pair(tree, **freeze_kwargs):
    blob = freeze(tree, U64ValueCodec, learned=True, **freeze_kwargs)
    exact = FrozenPHTree(blob, U64ValueCodec, learned=False)
    learned = FrozenPHTree(blob, U64ValueCodec)
    assert exact.learned_index is None
    assert learned.learned_index is not None
    return exact, learned


class TestPointParity:
    @pytest.mark.parametrize(
        "dims,width", [(2, 16), (3, 20), (6, 12), (14, 8)]
    )
    def test_get_contains_match_exact(self, dims, width):
        keys = _cube_keys(600, dims, width, seed=dims)
        tree = _tree(keys, dims, width)
        exact, learned = _pair(tree)
        rng = random.Random(99)
        misses = [
            tuple(rng.randrange(1 << width) for _ in range(dims))
            for _ in range(300)
        ]
        for key in keys + misses:
            assert learned.get(key) == exact.get(key) == tree.get(key)
            assert (
                learned.contains(key)
                == exact.contains(key)
                == (tree.get(key) is not None)
            )

    def test_items_order_unchanged(self):
        keys = _cube_keys(400, 3, 16, seed=5)
        tree = _tree(keys, 3, 16)
        exact, learned = _pair(tree)
        assert list(learned.items()) == list(exact.items())


class TestWindowParity:
    def test_windows_match_exact_order_included(self):
        keys = _cube_keys(800, 2, 16, seed=8)
        tree = _tree(keys, 2, 16)
        exact, learned = _pair(tree)
        rng = random.Random(21)
        top = (1 << 16) - 1
        for _ in range(150):
            lo = tuple(rng.randrange(1 << 16) for _ in range(2))
            ext = rng.choice((1, 16, 1 << 8, 1 << 12, 1 << 15))
            hi = tuple(min(v + ext, top) for v in lo)
            assert list(learned.query(lo, hi)) == list(
                exact.query(lo, hi)
            )

    def test_degenerate_and_full_windows(self):
        keys = _cube_keys(300, 3, 12, seed=2)
        tree = _tree(keys, 3, 12)
        exact, learned = _pair(tree)
        top = (1 << 12) - 1
        key = keys[0]
        assert list(learned.query(key, key)) == list(
            exact.query(key, key)
        )
        assert list(learned.query((0,) * 3, (top,) * 3)) == list(
            exact.query((0,) * 3, (top,) * 3)
        )


class TestKnn:
    def test_knn_matches_exact_on_random_data(self):
        keys = _cube_keys(500, 3, 14, seed=31)
        tree = _tree(keys, 3, 14)
        exact, learned = _pair(tree)
        rng = random.Random(37)
        for _ in range(60):
            probe = tuple(rng.randrange(1 << 14) for _ in range(3))
            k = rng.choice((1, 3, 10))
            assert learned.knn(probe, k) == exact.knn(probe, k)

    def test_knn_tie_order_matches_live_engine(self):
        # Regression: equidistant neighbours must surface in ascending
        # z-code order, exactly like the live engine and the sharded
        # merge -- the frozen heap once broke ties by push order.
        keys = [(31191, 17096), (31190, 17093), (31190, 17095),
                (31190, 17096)]
        tree = PHTree(dims=2, width=16)
        for key in keys:
            tree.put(key, None)
        frozen = FrozenPHTree(freeze(tree, learned=True))
        for k in (1, 2, 3, 4):
            assert frozen.knn((31190, 17096), k) == tree.knn(
                (31190, 17096), k
            )


class TestFallback:
    def test_adversarial_stream_forces_fallback_counter(self):
        # Duplicate-heavy blob keys at eps=1 / window_cap=0: any
        # segment with nonzero measured error is dead, so point reads
        # must take the exact path -- and must still all be right.
        rng = random.Random(43)
        blob = tuple(1 << 14 for _ in range(2))
        keys = list({
            tuple(b + rng.randint(-2, 2) for b in blob)
            for _ in range(200)
        } | {
            tuple(rng.randrange(1 << 16) for _ in range(2))
            for _ in range(200)
        })
        tree = _tree(keys, 2, 16)
        exact, learned = _pair(tree, eps=1, window_cap=0)
        obs.reset_all()
        obs.enable()
        try:
            for key in keys:
                assert learned.get(key) == exact.get(key)
            fallbacks = int(probes.learned_fallbacks_point.value)
            lookups = int(probes.learned_lookups_point.value)
        finally:
            obs.disable()
            obs.reset_all()
        assert lookups == len(keys)
        assert fallbacks > 0

    def test_dead_model_still_exact_on_windows(self):
        rng = random.Random(47)
        keys = list({
            (rng.randrange(64), rng.randrange(64)) for _ in range(300)
        })
        tree = _tree(keys, 2, 16)
        exact, learned = _pair(tree, eps=1, window_cap=0)
        for _ in range(50):
            lo = (rng.randrange(64), rng.randrange(64))
            hi = (lo[0] + rng.randrange(32), lo[1] + rng.randrange(32))
            assert list(learned.query(lo, hi)) == list(
                exact.query(lo, hi)
            )


class TestAttach:
    def test_padded_shared_memory_buffer(self):
        # A page-rounded shared-memory segment: zero slack after the
        # trailer must not confuse the attach, and the plain stream
        # without a trailer must attach model-less.
        keys = _cube_keys(200, 2, 12, seed=3)
        tree = _tree(keys, 2, 12)
        blob = freeze(tree, U64ValueCodec, learned=True)
        padded = FrozenPHTree(
            memoryview(bytearray(blob + b"\x00" * 4096)), U64ValueCodec
        )
        assert padded.learned_index is not None
        plain = freeze(tree, U64ValueCodec)
        padded_plain = FrozenPHTree(
            memoryview(bytearray(plain + b"\x00" * 4096)), U64ValueCodec
        )
        assert padded_plain.learned_index is None
        for key in keys:
            assert padded.get(key) == padded_plain.get(key)

    def test_empty_tree_freezes_without_trailer(self):
        tree = PHTree(dims=2, width=8)
        blob = freeze(tree, learned=True)
        frozen = FrozenPHTree(blob)
        assert frozen.learned_index is None
        assert len(frozen) == 0
