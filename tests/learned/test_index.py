"""LearnedZIndex: fit, PHL1 trailer round-trip, lookup exactness.

``find``/``seek`` answers are checked against ``bisect`` over the raw
z-code list -- the model is only ever a faster route to the answer the
bisect gives, including for probes far outside the fitted domain.
"""

from __future__ import annotations

import random
from bisect import bisect_left

import pytest

from repro.learned.index import (
    ABSENT,
    FALLBACK,
    FOUND,
    LearnedZIndex,
    TRAILER_MAGIC,
)


def _fit(zs, zbits, eps=64, window_cap=512):
    valpos = [i * 17 for i in range(len(zs))]
    return LearnedZIndex.fit(zs, valpos, zbits, eps, window_cap)


def _random_zs(n, zbits, seed=0):
    rng = random.Random(seed)
    return sorted({rng.randrange(1 << zbits) for _ in range(n)})


class TestFindSeek:
    @pytest.mark.parametrize("eps", [1, 8, 64])
    def test_every_member_found_or_fallback(self, eps):
        zs = _random_zs(3000, 48, seed=eps)
        model = _fit(zs, 48, eps=eps)
        for i, z in enumerate(zs):
            status, rank, abs_err = model.find(z)
            if status == FALLBACK:
                continue
            assert status == FOUND
            assert rank == i
            assert abs_err <= model.window_cap + 2

    def test_absent_probes_are_proven_absent(self):
        zs = _random_zs(2000, 40, seed=3)
        member = set(zs)
        model = _fit(zs, 40)
        rng = random.Random(7)
        for _ in range(2000):
            z = rng.randrange(1 << 40)
            if z in member:
                continue
            status, _, _ = model.find(z)
            assert status in (ABSENT, FALLBACK)

    def test_seek_is_always_exact(self):
        zs = _random_zs(2000, 40, seed=11)
        model = _fit(zs, 40)
        rng = random.Random(13)
        probes = [rng.randrange(1 << 40) for _ in range(2000)]
        # Out-of-domain probes, both sides -- the regression that once
        # inverted the bisect window: the last segment's extrapolation
        # predicted far past the array and seek indexed out of range.
        probes += [0, zs[0], zs[-1], zs[-1] + 1, (1 << 40) - 1]
        for z in probes:
            rank, _, _ = model.seek(z)
            assert rank == bisect_left(zs, z)

    def test_dead_segments_fall_back_never_lie(self):
        # window_cap=0 kills every segment whose measured error is
        # nonzero; the survivors must still answer exactly.
        zs = _random_zs(3000, 48, seed=17)
        model = _fit(zs, 48, eps=64, window_cap=0)
        fell_back = 0
        for i, z in enumerate(zs):
            status, rank, _ = model.find(z)
            if status == FALLBACK:
                fell_back += 1
            else:
                assert (status, rank) == (FOUND, i)
            seek_rank, _, seek_fell = model.seek(z)
            assert seek_rank == i  # leftmost: zs are unique
        assert fell_back > 0

    def test_duplicate_heavy_stream_survives(self):
        # Near-vertical rank runs (tiny z-gaps) at tight eps: cone
        # fitting degrades to many segments, answers stay exact.
        rng = random.Random(23)
        z = 0
        zs = []
        for _ in range(1500):
            z += rng.choice((1, 1, 1, 1 << 30))
            zs.append(z)
        model = _fit(zs, 48, eps=2, window_cap=1)
        for i, zz in enumerate(zs):
            status, rank, _ = model.find(zz)
            assert status in (FOUND, FALLBACK)
            if status == FOUND:
                assert rank == i


class TestTrailerRoundTrip:
    @pytest.mark.parametrize("zbits", [16, 48, 63])
    def test_single_word_round_trip(self, zbits):
        zs = _random_zs(500, zbits, seed=zbits)
        model = _fit(zs, zbits)
        blob = model.to_trailer()
        assert blob[:4] == TRAILER_MAGIC
        assert len(blob) == model.trailer_bytes
        # Attach mid-buffer with trailing slack, like a shared-memory
        # page: offset must be honoured, slack ignored.
        buf = memoryview(b"\x00" * 64 + blob + b"\x00" * 128)
        attached = LearnedZIndex.from_buffer(buf, 64)
        assert attached is not None
        assert attached.n == model.n
        assert attached.n_segments == model.n_segments
        assert attached.zwords == 1
        for i in range(model.n):
            assert attached.z_at(i) == zs[i]
            assert attached.value_pos(i) == model.value_pos(i)
        for z in zs[::7] + [zs[-1] + 1]:
            assert attached.find(z) == model.find(z)

    @pytest.mark.parametrize("zbits", [80, 180])
    def test_multi_word_round_trip(self, zbits):
        # z-codes wider than one u64 word (e.g. 3 dims x 60 bits): the
        # trailer stores zwords words per code, MSW first, and the
        # bisects run through the _MultiWordView shim.
        zs = _random_zs(400, zbits, seed=zbits)
        model = _fit(zs, zbits)
        assert model.zwords == (zbits + 63) // 64
        blob = model.to_trailer()
        attached = LearnedZIndex.from_buffer(memoryview(blob), 0)
        assert attached is not None
        assert attached.zwords == model.zwords
        for i in range(0, model.n, 3):
            assert attached.z_at(i) == zs[i]
        for i, z in enumerate(zs):
            status, rank, _ = attached.find(z)
            if status != FALLBACK:
                assert (status, rank) == (FOUND, i)

    def test_zero_padding_never_false_positives(self):
        assert LearnedZIndex.from_buffer(memoryview(b"\x00" * 256), 0) is None
        assert LearnedZIndex.from_buffer(memoryview(b""), 0) is None

    def test_truncated_trailer_rejected(self):
        zs = _random_zs(300, 40, seed=1)
        blob = _fit(zs, 40).to_trailer()
        for cut in (5, len(blob) // 2, len(blob) - 1):
            assert (
                LearnedZIndex.from_buffer(memoryview(blob[:cut]), 0)
                is None
            )

    def test_stats_shape(self):
        zs = _random_zs(1000, 40, seed=2)
        stats = _fit(zs, 40, eps=16).stats()
        assert stats["entries"] == 1000
        assert stats["segments"] >= 1
        assert stats["eps"] == 16
        assert stats["max_measured_err"] <= 16
        assert stats["dead_segments"] == 0
        assert stats["zwords"] == 1
        assert stats["trailer_bytes"] > 0


class TestFitValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LearnedZIndex.fit([], [], 16)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LearnedZIndex.fit([1, 2], [0], 16)
