"""Shrinking-cone PLA fitter: the bounded-error contract.

The learned layer's exactness hinges on two properties of
``fit_segments`` / ``measure_errors``: segment starts tile the input,
and the *measured* per-segment error really is the max |predicted -
true| rank over the segment.  Everything downstream (the ±(err+2)
bisect window, the dead-segment fallback) assumes exactly this.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.pla import fit_segments, measure_errors, predict


def _ascending_zs(draw_values):
    """Strictly ascending z-codes from arbitrary positive gaps."""
    zs = []
    z = 0
    for gap in draw_values:
        z += gap
        zs.append(z)
    return zs


gaps = st.lists(
    st.integers(min_value=1, max_value=1 << 40), min_size=1, max_size=400
)


class TestFitSegments:
    @given(gaps, st.integers(min_value=1, max_value=128))
    @settings(max_examples=100, deadline=None)
    def test_starts_tile_the_input(self, gap_list, eps):
        zs = _ascending_zs(gap_list)
        segments = fit_segments(zs, eps)
        starts = [s for s, _ in segments]
        assert starts[0] == 0
        assert starts == sorted(set(starts))
        assert all(0 <= s < len(zs) for s in starts)

    @given(gaps, st.integers(min_value=1, max_value=128))
    @settings(max_examples=100, deadline=None)
    def test_measured_error_is_exact(self, gap_list, eps):
        zs = _ascending_zs(gap_list)
        segments = fit_segments(zs, eps)
        errors = measure_errors(zs, segments)
        assert len(errors) == len(segments)
        starts = [s for s, _ in segments] + [len(zs)]
        for j, (start, slope) in enumerate(segments):
            end = starts[j + 1]
            z0 = zs[start]
            worst = 0
            for i in range(start, end):
                guess = predict(start, slope, z0, zs[i])
                assert guess is not None
                worst = max(worst, abs(guess - i))
            assert errors[j] == worst

    @given(gaps)
    @settings(max_examples=50, deadline=None)
    def test_cone_bound_holds_within_segment(self, gap_list):
        # The a-priori cone guarantee: with target eps, no point inside
        # a segment predicts further than eps from its true rank (+1
        # slack for float division/rounding; deltas here stay exactly
        # representable, so only the slope arithmetic can round).
        eps = 8
        zs = _ascending_zs(gap_list)
        errors = measure_errors(zs, fit_segments(zs, eps))
        assert all(err <= eps + 1 for err in errors)

    def test_single_entry_stream(self):
        segments = fit_segments([42], 4)
        assert [s for s, _ in segments] == [0]
        assert measure_errors([42], segments) == [0]

    def test_perfectly_linear_stream_is_one_segment(self):
        zs = list(range(0, 10_000, 7))
        segments = fit_segments(zs, 2)
        assert len(segments) == 1
        assert measure_errors(zs, segments) == [0]

    def test_pathological_spacing_splits_segments(self):
        # Exponential gaps defeat any single slope at tight eps.
        zs = [1 << i for i in range(64)]
        segments = fit_segments(zs, 1)
        assert len(segments) > 1
        errors = measure_errors(zs, segments)
        assert all(err <= 2 for err in errors)

    def test_random_stream_eps_one_stays_exactish(self):
        rng = random.Random(5)
        zs = sorted(rng.sample(range(1 << 30), 2000))
        errors = measure_errors(zs, fit_segments(zs, 1))
        assert all(err <= 2 for err in errors)


class TestPredict:
    def test_overflowing_extrapolation_returns_none_or_int(self):
        # predict() must never raise on wild extrapolations; it either
        # clamps into an int or signals FALLBACK with None.
        result = predict(0, 1e300, 0, 1 << 512)
        assert result is None or isinstance(result, int)

    def test_exact_on_the_anchor(self):
        assert predict(10, 0.5, 100, 100) == 10
