"""LearnedZRouter / ZCdfModel: interval semantics, balance, parity.

The learned router must be a drop-in for ZShardRouter: same protocol,
same contiguous z-interval ownership, observationally identical query
results through ShardedPHTree -- only the cut *positions* differ.
"""

from __future__ import annotations

import random

import pytest

from repro.core.phtree import PHTree
from repro.encoding.interleave import interleave
from repro.learned.cdf import ZCdfModel
from repro.learned.router import LearnedZRouter
from repro.parallel.router import ZShardRouter
from repro.parallel.sharded import ShardedPHTree


def _skew_keys(n, dims, width, seed=0):
    """Keys confined to the lowest quarter of every dimension: all
    share their top two bits, the prefix router's worst case."""
    rng = random.Random(seed)
    top = 1 << (width - 2)
    return list({
        tuple(rng.randrange(top) for _ in range(dims))
        for _ in range(n)
    })


class TestIntervalSemantics:
    def test_intervals_partition_the_z_space(self):
        rng = random.Random(1)
        zs = sorted(rng.randrange(1 << 24) for _ in range(500))
        router = LearnedZRouter.from_sorted_zcodes(zs, 3, 8, 8)
        expected_lo = 0
        for shard in range(router.n_shards):
            lo, hi = router.z_interval(shard)
            assert lo == expected_lo
            expected_lo = hi + 1
        assert expected_lo == 1 << 24

    def test_shard_of_consistent_with_intervals(self):
        rng = random.Random(2)
        zs = sorted(rng.randrange(1 << 24) for _ in range(400))
        router = LearnedZRouter.from_sorted_zcodes(zs, 3, 8, 5)
        for _ in range(2000):
            z = rng.randrange(1 << 24)
            shard = router.shard_of_z(z)
            lo, hi = router.z_interval(shard)
            assert lo <= z <= hi

    def test_shard_of_key_matches_shard_of_z(self):
        rng = random.Random(3)
        keys = [
            (rng.randrange(256), rng.randrange(256)) for _ in range(300)
        ]
        zs = sorted(interleave(key, 8) for key in keys)
        router = LearnedZRouter.from_sorted_zcodes(zs, 2, 8, 4)
        for key in keys:
            assert router.shard_of(key) == router.shard_of_z(
                interleave(key, 8)
            )

    def test_uniform_cuts_equal_prefix_router(self):
        # Equal-volume learned cuts at a power-of-two shard count are
        # exactly the prefix router's boundaries: every key must agree.
        learned = LearnedZRouter.uniform(2, 8, 8)
        prefix = ZShardRouter(dims=2, width=8, shards=8)
        rng = random.Random(4)
        for _ in range(2000):
            key = (rng.randrange(256), rng.randrange(256))
            assert learned.shard_of(key) == prefix.shard_of(key)
        for shard in range(8):
            assert learned.z_interval(shard) == prefix.z_interval(shard)

    def test_non_power_of_two_shard_counts(self):
        for shards in (1, 3, 5, 7):
            router = LearnedZRouter.uniform(2, 8, shards)
            assert router.n_shards == shards
            assert router.shard_of_z((1 << 16) - 1) == shards - 1


class TestBalance:
    def test_order_statistic_cuts_balance_skew(self):
        dims, width, shards = 3, 16, 8
        keys = _skew_keys(4000, dims, width, seed=7)
        zs = sorted(interleave(key, width) for key in keys)
        prefix = ZShardRouter(dims=dims, width=width, shards=shards)
        learned = LearnedZRouter.from_sorted_zcodes(
            zs, dims, width, shards
        )
        ideal = len(zs) / shards

        def worst(router):
            counts = [0] * shards
            for z in zs:
                counts[router.shard_of_z(z)] += 1
            return max(counts) / ideal

        # The prefix router funnels the whole population into shard 0;
        # the learned cuts stay within rounding of perfect balance.
        assert worst(prefix) >= 3.0
        assert worst(learned) <= 1.5

    def test_split_sorted_respects_intervals(self):
        rng = random.Random(11)
        keys = sorted(
            {(rng.randrange(256), rng.randrange(256)) for _ in range(300)},
            key=lambda key: interleave(key, 8),
        )
        items = [(key, None) for key in keys]
        zs = [interleave(key, 8) for key in keys]
        router = LearnedZRouter.from_sorted_zcodes(zs, 2, 8, 4)
        rebuilt = []
        for shard, run in router.split_sorted(items):
            lo, hi = router.z_interval(shard)
            for key, _ in run:
                assert lo <= interleave(key, 8) <= hi
            rebuilt.extend(run)
        assert rebuilt == items

    def test_shards_for_box_never_misses(self):
        rng = random.Random(13)
        keys = list(
            {(rng.randrange(256), rng.randrange(256)) for _ in range(400)}
        )
        zs = sorted(interleave(key, 8) for key in keys)
        router = LearnedZRouter.from_sorted_zcodes(zs, 2, 8, 8)
        for _ in range(100):
            lo = (rng.randrange(256), rng.randrange(256))
            hi = (
                min(lo[0] + rng.randrange(64), 255),
                min(lo[1] + rng.randrange(64), 255),
            )
            hit_shards = set(router.shards_for_box(lo, hi))
            for key in keys:
                if all(a <= v <= b for v, a, b in zip(key, lo, hi)):
                    assert router.shard_of(key) in hit_shards


class TestCdfModel:
    def test_quantiles_monotone_and_bounded(self):
        rng = random.Random(17)
        zs = sorted(rng.randrange(1 << 32) for _ in range(1000))
        model = ZCdfModel.from_sorted_zcodes(zs, 32)
        previous = -1
        for i in range(21):
            q = model.quantile(i / 20)
            assert 0 <= q < 1 << 32
            assert q >= previous
            previous = q

    def test_mass_below_tracks_empirical_cdf(self):
        rng = random.Random(19)
        zs = sorted(rng.randrange(1 << 24) for _ in range(2000))
        model = ZCdfModel.from_sorted_zcodes(zs, 24)
        for z in (zs[100], zs[500], zs[1000], zs[1900]):
            empirical = sum(1 for v in zs if v < z) / len(zs)
            fraction = model.mass_below(z) / model.total
            assert abs(fraction - empirical) < 0.05

    def test_cuts_are_equi_mass(self):
        rng = random.Random(23)
        zs = sorted(rng.randrange(1 << 24) for _ in range(3000))
        cuts = ZCdfModel.from_sorted_zcodes(zs, 24).cuts(6)
        assert cuts == sorted(cuts)
        assert len(cuts) == 5
        counts = []
        bounds = [0] + cuts + [1 << 24]
        for lo, hi in zip(bounds, bounds[1:]):
            counts.append(sum(1 for z in zs if lo <= z < hi))
        assert max(counts) <= 1.5 * (len(zs) / 6)


class TestShardedIntegration:
    def _entries(self, n, dims, width, seed):
        keys = _skew_keys(n, dims, width, seed=seed)
        return [(key, i) for i, key in enumerate(keys)]

    def test_learned_build_matches_reference(self):
        dims, width = 2, 16
        entries = self._entries(500, dims, width, seed=29)
        reference = PHTree(dims=dims, width=width)
        for key, value in entries:
            reference.put(key, value)
        with ShardedPHTree.build(
            entries, dims=dims, width=width, shards=4, router="learned"
        ) as sharded:
            assert isinstance(sharded.router, LearnedZRouter)
            for key, value in entries:
                assert sharded.get(key) == value
            top = (1 << width) - 1
            assert list(sharded.query((0, 0), (top, top))) == list(
                reference.query((0, 0), (top, top))
            )
            rng = random.Random(31)
            for _ in range(20):
                probe = (rng.randrange(top), rng.randrange(top))
                assert sharded.knn(probe, 5) == reference.knn(probe, 5)
            sharded.check_invariants()

    def test_learned_build_balances_skew(self):
        dims, width = 3, 16
        entries = self._entries(2000, dims, width, seed=37)
        with ShardedPHTree.build(
            entries, dims=dims, width=width, shards=8, router="learned"
        ) as sharded:
            sizes = sharded.shard_sizes()
            assert max(sizes.values()) <= 1.5 * (len(entries) / 8)

    def test_relearn_router_rebalances_incremental_build(self):
        dims, width = 2, 16
        entries = self._entries(1200, dims, width, seed=41)
        with ShardedPHTree(dims=dims, width=width, shards=8) as sharded:
            for key, value in entries:
                sharded.put(key, value)
            before = max(sharded.shard_sizes().values())
            assert before == len(entries)  # prefix worst case
            sharded.relearn_router()
            after = max(sharded.shard_sizes().values())
            assert after <= 1.5 * (len(entries) / 8)
            for key, value in entries:
                assert sharded.get(key) == value
            sharded.check_invariants()
