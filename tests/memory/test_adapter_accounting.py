"""Hand-verified memory accounting for the PH-tree adapter — the backend
behind Table 1's PH column."""

from __future__ import annotations

import pytest

from repro.baselines.adapter import phtree_memory_bytes
from repro.core.phtree import PHTree
from repro.memory.model import JvmMemoryModel


class TestHandComputedSingleNode:
    """One root node with two 1-bit-key entries: every byte accounted
    for by hand."""

    def make_tree(self):
        tree = PHTree(dims=2, width=1)
        tree.put((0, 0))
        tree.put((1, 1))
        return tree

    def test_layout_assumptions(self):
        tree = self.make_tree()
        root = tree.root
        assert root.post_len == 0  # width 1 -> address bit 0
        assert root.infix_len == 0
        n_sub, n_post = root.slot_counts()
        assert (n_sub, n_post) == (0, 2)

    def test_bytes_match_hand_sum(self):
        model = JvmMemoryModel.compressed_oops()
        tree = self.make_tree()
        root = tree.root
        # Node object: 12B header + 2 refs (8) + 2 ints (8) = 28 -> 32.
        node_obj = 32
        assert model.object_bytes(refs=2, ints=2) == node_obj
        # Bit string: post_len = 0 so postfix payload is 0 bits.
        #   LHC: 2 slots * (k + flag) = 2 * (2 + 2) = 8 bits
        #   HC:  2**k * (flag + payload) = 4 * 2 = 8 bits
        # Either representation: 8 bits -> 1 byte -> byte[1] = 24.
        byte_array = model.byte_array_for_bits(8)
        assert byte_array == 24
        # No sub-nodes, no values: no ref array.
        expected = node_obj + byte_array
        assert phtree_memory_bytes(tree, model) == expected

    def test_value_refs_add_exactly_one_ref_array(self):
        model = JvmMemoryModel.compressed_oops()
        tree = self.make_tree()
        without = phtree_memory_bytes(tree, model, with_values=False)
        with_values = phtree_memory_bytes(tree, model, with_values=True)
        # Two value refs -> Object[2] = 16 header + 8 = 24.
        assert with_values - without == model.array_bytes("ref", 2)


class TestTwoLevelTree:
    def test_sub_node_charges_ref_array(self):
        model = JvmMemoryModel.compressed_oops()
        tree = PHTree(dims=1, width=4)
        # 0b00xx cluster forces a sub-node below the root.
        tree.put((0b0000,))
        tree.put((0b0001,))
        tree.put((0b1000,))
        nodes = list(tree.nodes())
        assert len(nodes) == 2
        total = phtree_memory_bytes(tree, model)
        # Recompute from parts: every node pays object + byte[];
        # exactly one node (the root) holds a sub-node reference.
        by_hand = 0
        from repro.baselines.adapter import _node_bit_string_bits

        for node in nodes:
            bits = node.infix_len * 1 + _node_bit_string_bits(node, 1, 0)
            by_hand += model.object_bytes(refs=2, ints=2)
            by_hand += model.byte_array_for_bits(bits)
            n_sub, _ = node.slot_counts()
            if n_sub:
                by_hand += model.array_bytes("ref", n_sub)
        assert total == by_hand


class TestModelSensitivity:
    def test_uncompressed_oops_grow_the_tree(self):
        tree = PHTree(dims=2, width=16)
        for i in range(100):
            tree.put((i * 37 % (1 << 16), i * 101 % (1 << 16)))
        compressed = phtree_memory_bytes(
            tree, JvmMemoryModel.compressed_oops()
        )
        uncompressed = phtree_memory_bytes(
            tree, JvmMemoryModel.uncompressed()
        )
        assert uncompressed > compressed

    def test_bits_never_negative(self):
        from repro.baselines.adapter import _node_bit_string_bits

        tree = PHTree(dims=3, width=8)
        for i in range(200):
            tree.put(((i * 7) % 256, (i * 11) % 256, (i * 13) % 256))
        for node in tree.nodes():
            assert _node_bit_string_bits(node, 3, 0) >= 0
