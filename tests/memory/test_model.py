"""Tests for the JVM object-layout model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.model import JvmMemoryModel


@pytest.fixture
def model():
    return JvmMemoryModel.compressed_oops()


class TestAlignment:
    def test_align(self, model):
        assert model.align(0) == 0
        assert model.align(1) == 8
        assert model.align(8) == 8
        assert model.align(9) == 16

    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_align_properties(self, size):
        model = JvmMemoryModel.compressed_oops()
        aligned = model.align(size)
        assert aligned >= size
        assert aligned % 8 == 0
        assert aligned - size < 8


class TestObjectSizes:
    def test_bare_object(self, model):
        # 12-byte header, padded to 16.
        assert model.object_bytes() == 16

    def test_known_java_layouts(self, model):
        # java.lang.Double: 12 + 8 -> 24? No: 12 header + 8 double = 20,
        # but the double must be 8-aligned so HotSpot pads to 24.  Our
        # model sums then aligns: 20 -> 24.  Same result.
        assert model.boxed_double_bytes() == 24
        # An object with 2 refs + 1 int: 12 + 8 + 4 = 24.
        assert model.object_bytes(refs=2, ints=1) == 24

    def test_field_widths(self, model):
        assert model.object_bytes(booleans=1) == 16
        assert model.object_bytes(chars=2) == 16
        assert model.object_bytes(longs=1) == 24
        assert model.object_bytes(doubles=2) == model.object_bytes(longs=2)


class TestArraySizes:
    def test_double_array(self, model):
        # 16-byte array header + 8 per element.
        assert model.array_bytes("double", 0) == 16
        assert model.array_bytes("double", 3) == 40

    def test_byte_array_alignment(self, model):
        assert model.array_bytes("byte", 1) == 24
        assert model.array_bytes("byte", 8) == 24
        assert model.array_bytes("byte", 9) == 32

    def test_ref_array(self, model):
        assert model.array_bytes("ref", 2) == 24

    def test_negative_length_rejected(self, model):
        with pytest.raises(ValueError):
            model.array_bytes("int", -1)

    def test_unknown_type_rejected(self, model):
        with pytest.raises(ValueError):
            model.array_bytes("decimal", 1)

    def test_byte_array_for_bits(self, model):
        assert model.byte_array_for_bits(0) == model.array_bytes("byte", 0)
        assert model.byte_array_for_bits(1) == model.array_bytes("byte", 1)
        assert model.byte_array_for_bits(9) == model.array_bytes("byte", 2)


class TestConfigurations:
    def test_uncompressed_is_bigger(self):
        c = JvmMemoryModel.compressed_oops()
        u = JvmMemoryModel.uncompressed()
        assert u.object_bytes(refs=2) > c.object_bytes(refs=2)
        assert u.array_bytes("ref", 4) > c.array_bytes("ref", 4)
        # Primitive payloads are unaffected beyond headers.
        assert u.array_bytes("double", 100) - c.array_bytes(
            "double", 100
        ) == (u.array_header_bytes - c.array_header_bytes)

    def test_primitive_bytes(self):
        model = JvmMemoryModel.compressed_oops()
        assert model.primitive_bytes("boolean") == 1
        assert model.primitive_bytes("double") == 8
        with pytest.raises(ValueError):
            model.primitive_bytes("string")
