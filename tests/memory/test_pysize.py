"""Tests for the CPython deep-sizeof measurement."""

from __future__ import annotations

import sys

from repro.baselines import make_index
from repro.datasets import generate_cube
from repro.memory.pysize import deep_sizeof, index_sizeof


class TestDeepSizeof:
    def test_empty_containers(self):
        assert deep_sizeof([]) == sys.getsizeof([])
        assert deep_sizeof({}) == sys.getsizeof({})

    def test_counts_contents(self):
        assert deep_sizeof([1.5, 2.5]) > sys.getsizeof([1.5, 2.5])

    def test_shared_objects_counted_once(self):
        payload = (1.5, 2.5, 3.5)
        twice = [payload, payload]
        once = [payload]
        # The second reference adds only the list slot, not the tuple.
        assert deep_sizeof(twice) - deep_sizeof(once) < sys.getsizeof(
            payload
        )

    def test_slots_objects(self):
        from repro.core.node import Entry

        entry = Entry((1, 2, 3), "value")
        assert deep_sizeof(entry) > sys.getsizeof(entry)

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) == sys.getsizeof(a)


class TestRealMemoryOrderings:
    """Real CPython footprints.  The mutable Python node engine trades
    space for speed (boxed tuples everywhere), so the paper's space
    claims attach to the *bit-packed* layout -- which is exactly what
    freezing produces.  The frozen tree must crush every pointer-based
    structure in real memory."""

    def test_frozen_ph_beats_everything_in_real_memory(self):
        from repro.core import freeze
        from repro.core.frozen import FrozenPHTree

        points = generate_cube(2000, 3, seed=1)
        sizes = {}
        for name in ("PH", "KD1", "KD2", "CB1", "CB2"):
            index = make_index(name, dims=3)
            for p in points:
                index.put(p)
            sizes[name] = index_sizeof(index)
        ph_index = make_index("PH", dims=3)
        for p in points:
            ph_index.put(p)
        frozen = FrozenPHTree(freeze(ph_index.tree.int_tree))
        frozen_size = frozen.memory_bytes()
        # The arena-backed mutable engine is itself flat-packed, so the
        # 5x crush only applies against the pointer-based structures;
        # frozen must still be the smallest of all of them.
        mutable_is_packed = ph_index.tree.int_tree.layout == "arena"
        for name, size in sizes.items():
            if name == "PH" and mutable_is_packed:
                assert frozen_size < size, (name, size, frozen_size)
            else:
                assert frozen_size < size / 5, (name, size, frozen_size)

    def test_mutable_engine_tradeoff_documented(self):
        """The object-node PH engine is *not* the smallest structure in
        raw CPython terms -- pin that down so the trade-off stays
        visible.  The arena engine removes the trade-off: its slabs
        undercut the pointer-based kD-tree."""
        points = generate_cube(1000, 3, seed=1)
        ph = make_index("PH", dims=3)
        kd = make_index("KD1", dims=3)
        for p in points:
            ph.put(p)
            kd.put(p)
        if ph.tree.int_tree.layout == "arena":
            assert index_sizeof(ph) < index_sizeof(kd)
        else:
            assert index_sizeof(ph) > index_sizeof(kd)

    def test_real_memory_grows_with_n(self):
        index = make_index("PH", dims=2)
        points = generate_cube(3000, 2, seed=2)
        for p in points[:1000]:
            index.put(p)
        small = index_sizeof(index)
        for p in points[1000:]:
            index.put(p)
        assert index_sizeof(index) > small
