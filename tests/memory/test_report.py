"""Tests for the space report builder (the Table 1/2 backend)."""

from __future__ import annotations

import pytest

from repro.datasets import generate_cube
from repro.memory.report import SpaceReport, bytes_per_entry, space_report


class TestSpaceReport:
    def test_builds_all_structures(self):
        points = generate_cube(300, 3, seed=1)
        report = space_report(
            "CUBE", points, ("PH", "KD1", "d[]"), dims=3
        )
        assert set(report.per_structure) == {"PH", "KD1", "d[]"}
        assert report.n_entries == 300
        assert all(v > 0 for v in report.per_structure.values())

    def test_row_ordering_and_missing(self):
        report = SpaceReport("X", 10, 2, {"PH": 50.0})
        row = report.row(["PH", "KD1"])
        assert row[0] == 50.0
        assert row[1] != row[1]  # NaN

    def test_format_table_mentions_everything(self):
        points = generate_cube(100, 2, seed=2)
        report = space_report("CUBE", points, ("d[]", "o[]"), dims=2)
        text = report.format_table()
        assert "CUBE" in text
        assert "d[]" in text
        assert "o[]" in text

    def test_paper_ordering_holds_on_cube(self):
        """Table 1's qualitative ordering at reproduction scale:
        d[] < o[] < PH < CB2 <= CB1 < KD1 < KD2."""
        points = generate_cube(3000, 3, seed=3)
        names = ("PH", "KD1", "KD2", "CB1", "CB2", "d[]", "o[]")
        report = space_report("CUBE", points, names, dims=3)
        b = report.per_structure
        assert b["d[]"] < b["o[]"] < b["PH"]
        assert b["PH"] < b["CB2"] <= b["CB1"] < b["KD1"] < b["KD2"]


class TestBytesPerEntry:
    def test_empty_index(self):
        from repro.baselines import make_index

        assert bytes_per_entry(make_index("PH", dims=2)) == 0.0

    def test_matches_method(self):
        from repro.baselines import make_index

        index = make_index("o[]", dims=2)
        for i in range(10):
            index.put((float(i), 0.0))
        assert bytes_per_entry(index) == pytest.approx(
            index.bytes_per_entry()
        )
