import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Observability on, registry clean, guaranteed off again after."""
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()
