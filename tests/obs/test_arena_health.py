"""Arena health gauges: slab bytes, entry states and free lists of
every live NodeArena, published through the registry collector."""

from __future__ import annotations

import gc

from repro import obs
from repro.core.phtree import PHTree


def _values(payload, name):
    return {
        tuple(sorted(v["labels"].items())): v["value"]
        for v in payload[name]["values"]
    }


def _live_instances():
    gc.collect()  # drop arenas kept alive only by collection cycles
    return _values(obs.dump_json(), "repro_arena_instances")[()]


class TestArenaHealthGauges:
    def test_gauges_track_a_live_arena(self):
        baseline = _live_instances()
        tree = PHTree(dims=2, width=16, layout="arena")
        for i in range(64):
            tree.put((i * 97 % 65536, i * 389 % 65536), i)
        payload = obs.dump_json()
        assert _values(payload, "repro_arena_instances")[()] >= (
            baseline + 1
        )
        slab = _values(payload, "repro_arena_slab_bytes")
        assert slab[(("kind", "capacity"),)] > 0
        assert 0 < slab[(("kind", "live"),)] <= slab[(("kind", "capacity"),)]
        assert _values(payload, "repro_arena_nodes")[()] >= 1
        entries = _values(payload, "repro_arena_entries")
        assert entries[(("state", "live"),)] >= 64

    def test_removals_grow_the_free_lists(self):
        tree = PHTree(dims=2, width=16, layout="arena")
        keys = [(i * 97 % 65536, i * 389 % 65536) for i in range(128)]
        for key in keys:
            tree.put(key, None)
        before = _values(obs.dump_json(), "repro_arena_entries")
        for key in keys[:100]:
            tree.remove(key)
        after = _values(obs.dump_json(), "repro_arena_entries")
        assert (
            after[(("state", "free"),)] > before[(("state", "free"),)]
        )
        assert (
            after[(("state", "live"),)] < before[(("state", "live"),)]
        )
        # Node collapses feed the per-size-class free-block census.
        blocks = _values(obs.dump_json(), "repro_arena_free_blocks")
        assert sum(blocks.values()) >= 1

    def test_dead_arena_leaves_the_census(self):
        tree = PHTree(dims=2, width=16, layout="arena")
        tree.put((1, 2), None)
        with_arena = _live_instances()
        del tree
        assert _live_instances() <= with_arena - 1

    def test_gauges_in_prometheus_text(self):
        tree = PHTree(dims=2, width=16, layout="arena")
        tree.put((3, 4), None)
        text = obs.render_prometheus()
        assert "# TYPE repro_arena_slab_bytes gauge" in text
        assert 'repro_arena_slab_bytes{kind="capacity"}' in text
        assert "repro_arena_instances" in text
        del tree
