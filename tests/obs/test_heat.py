"""Z-region heat map: bucketing, decay, feeding sites, CLUSTER skew."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.phtree import PHTree
from repro.datasets.cluster import generate_cluster
from repro.encoding.ieee import encode_point
from repro.obs import heat as heat_mod
from repro.obs.heat import DEFAULT_LEVELS, ZHeatMap


@pytest.fixture(autouse=True)
def clean_heatmap():
    heat_mod.HEATMAP.set_levels(DEFAULT_LEVELS)
    heat_mod.reset()
    yield
    heat_mod.HEATMAP.set_levels(DEFAULT_LEVELS)
    heat_mod.reset()


class TestZHeatMap:
    def test_same_prefix_shares_a_bucket(self):
        hm = ZHeatMap(levels=4)
        # Top 4 bits of each 16-bit value decide the bucket.
        hm.record((0x1234, 0x5678), 16, "get")
        hm.record((0x1FFF, 0x5000), 16, "put")
        hm.record((0x2000, 0x5000), 16, "get")  # differs in dim 0
        assert len(hm) == 2
        hottest = hm.top(1)[0]
        assert hottest.count == 2
        assert hottest.ops == {"get": 1, "put": 1}

    def test_ranges_cover_the_recorded_key(self):
        hm = ZHeatMap(levels=4)
        key = (0xBEEF, 0x1234)
        hm.record(key, 16, "get")
        bucket = hm.top(1)[0]
        assert bucket.contains(key)
        for value, (lo, hi) in zip(key, bucket.ranges()):
            assert lo <= value <= hi
        assert len(bucket.bits()) == 4 * 2

    def test_levels_clamped_to_width(self):
        hm = ZHeatMap(levels=8)
        hm.record((3, 1), 2, "get")  # width 2 < levels 8
        bucket = hm.top(1)[0]
        assert bucket.levels == 2
        assert bucket.contains((3, 1))

    def test_score_decays_with_half_life(self):
        now = [0.0]
        hm = ZHeatMap(levels=4, half_life_s=10.0, clock=lambda: now[0])
        hm.record((0, 0), 16, "get")
        assert hm.top(1)[0].scored(0.0, 10.0) == pytest.approx(1.0)
        now[0] = 10.0  # one half-life
        assert hm.top(1)[0].scored(10.0, 10.0) == pytest.approx(0.5)
        # A fresh hit decays the old score before adding.
        hm.record((0, 0), 16, "get")
        assert hm.top(1)[0].score == pytest.approx(1.5)
        assert hm.top(1)[0].count == 2

    def test_decay_reorders_but_count_persists(self):
        now = [0.0]
        hm = ZHeatMap(levels=4, half_life_s=1.0, clock=lambda: now[0])
        for _ in range(100):
            hm.record((0, 0), 16, "get")
        now[0] = 30.0  # ~2^-30 of the old score remains
        for _ in range(5):
            hm.record((0xFFFF, 0xFFFF), 16, "get")
        hottest, cold = hm.top(2)
        assert hottest.count == 5  # recent beats big-but-old
        assert cold.count == 100

    def test_latency_ewma(self):
        hm = ZHeatMap(levels=4)
        hm.record((0, 0), 16, "query", seconds=1.0)
        bucket = hm.top(1)[0]
        assert bucket.latency_ewma_s == pytest.approx(1.0)
        hm.record((0, 0), 16, "query", seconds=0.0)
        assert bucket.latency_ewma_s == pytest.approx(0.8)
        assert bucket.latency_count == 2
        # Ops without a duration leave the EWMA untouched.
        hm.record((0, 0), 16, "get")
        assert bucket.latency_count == 2

    def test_snapshot_is_json_friendly(self):
        import json

        hm = ZHeatMap(levels=4)
        hm.record((0xAB00, 0x1200), 16, "put", seconds=0.001)
        snap = hm.snapshot()
        assert len(snap) == 1
        json.dumps(snap)  # must not raise
        entry = snap[0]
        assert entry["count"] == 1
        assert entry["ops"] == {"put": 1}
        assert entry["latency_samples"] == 1
        assert entry["z_prefix"] == format(entry["code"], "08b")

    def test_render_histogram(self):
        hm = ZHeatMap(levels=4)
        for _ in range(10):
            hm.record((0, 0), 16, "get")
        hm.record((0xFFFF, 0xFFFF), 16, "put")
        text = hm.render(5)
        assert "top 2 of 2 z-regions" in text
        assert "#" in text
        assert "get=10" in text
        assert "region [" in text
        assert hm.render(0) != ""

    def test_render_empty(self):
        assert "no traffic" in ZHeatMap().render()

    def test_set_levels_drops_buckets(self):
        hm = ZHeatMap(levels=4)
        hm.record((0, 0), 16, "get")
        hm.set_levels(2)
        assert len(hm) == 0
        assert hm.levels == 2

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ZHeatMap(levels=0)
        with pytest.raises(ValueError):
            ZHeatMap(half_life_s=0.0)
        with pytest.raises(ValueError):
            ZHeatMap().set_levels(-1)

    def test_record_region_counts_in_bulk(self):
        hm = ZHeatMap(levels=4)
        hm.record((0, 0), 16, "query", count=7)
        assert hm.top(1)[0].count == 7


class TestTreeFeeding:
    @pytest.mark.parametrize("layout", ["object", "arena"])
    def test_ops_feed_the_heatmap_when_enabled(self, layout, obs_enabled):
        heat_mod.reset()
        tree = PHTree(dims=2, width=16, layout=layout)
        key = (0x1234, 0x5678)
        tree.put(key, "v")
        tree.get(key)
        tree.contains(key)
        list(tree.query((0x1000, 0x5000), (0x1FFF, 0x5FFF)))
        tree.knn(key, 1)
        tree.remove(key)
        assert len(heat_mod.HEATMAP) >= 1
        ops = {}
        for bucket in heat_mod.top(10):
            for name, count in bucket.ops.items():
                ops[name] = ops.get(name, 0) + count
        for op in ("put", "get", "contains", "query", "knn", "remove"):
            assert ops.get(op, 0) >= 1, op
        # The query charged its wall time to the scanned region.
        assert any(b.latency_count for b in heat_mod.top(10))

    def test_disabled_ops_record_nothing(self):
        assert not obs.is_enabled()
        tree = PHTree(dims=2, width=16)
        tree.put((1, 2), None)
        tree.get((1, 2))
        list(tree.query((0, 0), (10, 10)))
        assert len(heat_mod.HEATMAP) == 0

    def test_cluster_skew_is_identified(self, obs_enabled):
        """The acceptance check: on the paper's CLUSTER distribution the
        hottest z-region is the one holding the cluster line."""
        heat_mod.reset()
        points = generate_cluster(1000, 2, seed=0)
        tree = PHTree(dims=2, width=64)
        for point in points:
            tree.put(encode_point(point), None)
        for point in points:
            tree.contains(encode_point(point))
        hottest = heat_mod.top(1)[0]
        centers = [
            encode_point((x / 10, 0.5)) for x in range(11)
        ]
        assert any(hottest.contains(center) for center in centers)
