"""The shared ``repro.*`` logging helper."""

import io
import logging

from repro.obs.log import configure_logging, get_logger, verbosity_to_level


class TestVerbosityMapping:
    def test_levels(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(-3) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(9) == logging.DEBUG


class TestGetLogger:
    def test_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("tool").name == "repro.tool"
        child = get_logger("parallel.executor")
        assert child.parent.name in ("repro.parallel", "repro")


class TestConfigureLogging:
    def test_idempotent_no_handler_stacking(self):
        first = io.StringIO()
        second = io.StringIO()
        logger = configure_logging(1, stream=first)
        before = len(logger.handlers)
        logger = configure_logging(2, stream=second)
        assert len(logger.handlers) == before
        logger.debug("only second stream sees this")
        assert "only second stream" not in first.getvalue()
        assert "only second stream" in second.getvalue()
        configure_logging(0, stream=io.StringIO())  # restore default

    def test_level_gates_output(self):
        stream = io.StringIO()
        logger = configure_logging(0, stream=stream)
        logger.info("hidden")
        logger.warning("shown")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "shown" in text
        assert "WARNING repro: shown" in text
        configure_logging(0, stream=io.StringIO())
