"""Unit tests for the dependency-free metrics registry."""

import pytest

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    Registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_set_max_is_high_water(self):
        g = Gauge()
        g.set_max(4)
        g.set_max(2)
        assert g.value == 4
        g.set_max(9)
        assert g.value == 9


class TestHistogram:
    def test_cumulative_buckets_and_inf(self):
        h = Histogram(buckets=(1, 10, 100))
        for v in (0.5, 5, 5, 50, 5000):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts["1"] == 1
        assert counts["10"] == 3
        assert counts["100"] == 4
        assert counts["+Inf"] == 5
        assert h.count == 5
        assert h.sum == pytest.approx(5060.5)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        h = Histogram(buckets=(1, 10))
        h.observe(10)
        assert h.bucket_counts()["10"] == 1

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_default_latency_buckets_are_log_spaced(self):
        assert LATENCY_BUCKETS_S[0] == pytest.approx(1e-6)
        ratios = {
            round(b / a)
            for a, b in zip(LATENCY_BUCKETS_S, LATENCY_BUCKETS_S[1:])
        }
        assert ratios == {4}
        assert DEPTH_BUCKETS[-1] == 64


class TestMetricFamily:
    def test_unlabelled_family_proxies_to_single_child(self):
        f = MetricFamily("m", "help", "counter")
        f.inc(3)
        assert f.value == 3

    def test_labelled_children_are_cached(self):
        f = MetricFamily("m", "help", "counter", labelnames=("op",))
        a = f.labels("get")
        b = f.labels("get")
        assert a is b
        a.inc()
        assert f.labels("put").value == 0

    def test_labels_by_keyword(self):
        f = MetricFamily("m", "h", "counter", labelnames=("a", "b"))
        assert f.labels(b="2", a="1") is f.labels("1", "2")

    def test_wrong_label_arity_raises(self):
        f = MetricFamily("m", "h", "counter", labelnames=("op",))
        with pytest.raises(ValueError):
            f.labels("x", "y")

    def test_labelled_family_rejects_bare_proxy(self):
        f = MetricFamily("m", "h", "counter", labelnames=("op",))
        with pytest.raises(ValueError):
            f.inc()

    def test_reset_zeroes_but_keeps_children(self):
        f = MetricFamily("m", "h", "counter", labelnames=("op",))
        f.labels("get").inc(7)
        f.reset()
        assert f.labels("get").value == 0


class TestRegistry:
    def test_registration_is_idempotent(self):
        r = Registry()
        a = r.counter("x_total", "help")
        b = r.counter("x_total", "other help is ignored")
        assert a is b

    def test_kind_conflict_raises(self):
        r = Registry()
        r.counter("x_total", "h")
        with pytest.raises(ValueError):
            r.gauge("x_total", "h")

    def test_label_conflict_raises(self):
        r = Registry()
        r.counter("x_total", "h", labelnames=("op",))
        with pytest.raises(ValueError):
            r.counter("x_total", "h", labelnames=("shard",))

    def test_render_prometheus_text_format(self):
        r = Registry()
        r.counter("a_total", "A counter.", labelnames=("op",)).labels(
            "get"
        ).inc(3)
        r.gauge("b_bytes", "A gauge.").set(17)
        text = r.render_prometheus()
        assert "# HELP a_total A counter.\n" in text
        assert "# TYPE a_total counter\n" in text
        assert 'a_total{op="get"} 3\n' in text
        assert "b_bytes 17\n" in text
        assert text.endswith("\n")

    def test_render_labelled_histogram_merges_le(self):
        r = Registry()
        h = r.histogram(
            "lat_seconds", "h", labelnames=("mode",), buckets=(1, 2)
        )
        h.labels("read").observe(1.5)
        text = r.render_prometheus()
        assert 'lat_seconds_bucket{mode="read", le="1"} 0' in text
        assert 'lat_seconds_bucket{mode="read", le="2"} 1' in text
        assert 'lat_seconds_bucket{mode="read", le="+Inf"} 1' in text
        assert 'lat_seconds_count{mode="read"} 1' in text

    def test_label_values_are_escaped(self):
        r = Registry()
        r.counter("esc_total", "h", labelnames=("v",)).labels(
            'a"b\\c\nd'
        ).inc()
        text = r.render_prometheus()
        assert '{v="a\\"b\\\\c\\nd"}' in text

    def test_dump_json_shape(self):
        r = Registry()
        r.counter("a_total", "A.", labelnames=("op",)).labels("x").inc(2)
        r.histogram("h", "H.", buckets=(1,)).observe(0.5)
        dump = r.dump_json()
        assert dump["a_total"]["type"] == "counter"
        assert dump["a_total"]["values"] == [
            {"labels": {"op": "x"}, "value": 2}
        ]
        hist = dump["h"]["values"][0]["value"]
        assert hist["count"] == 1
        assert hist["buckets"]["1"] == 1

    def test_reset_zeroes_everything(self):
        r = Registry()
        r.counter("a_total", "h").inc(5)
        r.gauge("g", "h").set(3)
        r.reset()
        assert r.get("a_total").value == 0
        assert r.get("g").value == 0


class TestCollectors:
    def test_collector_runs_before_render_and_dump(self):
        r = Registry()
        g = r.gauge("derived", "h")
        state = {"value": 0}
        r.add_collector("probe", lambda: g.set(state["value"]))
        state["value"] = 7
        assert "derived 7" in r.render_prometheus()
        state["value"] = 9
        assert r.dump_json()["derived"]["values"][0]["value"] == 9

    def test_collector_replaced_by_name(self):
        r = Registry()
        g = r.gauge("derived", "h")
        r.add_collector("probe", lambda: g.set(1))
        r.add_collector("probe", lambda: g.set(2))  # replaces, no dup
        r.collect()
        assert g.value == 2

    def test_collect_is_explicit_too(self):
        r = Registry()
        g = r.gauge("derived", "h")
        r.add_collector("probe", lambda: g.set(5))
        assert g.value == 0
        r.collect()
        assert g.value == 5
