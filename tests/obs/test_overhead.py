"""Zero-cost-off pin: disabled instrumentation must stay under 5%.

The hot engines (``get_many``'s merge-join, the range-scan kernel)
dispatch once per *call* to an uninstrumented twin when observability is
off, so the disabled cost is a single module-attribute truth test.
These tests time the public dispatching entry points against the plain
twins directly and pin the ratio.

Timing on shared CI hardware is noisy, so each comparison takes the
best of several runs and retries a few times before failing; a real
regression (per-iteration work on the disabled path) shows up as a
consistent ratio well above the bound, not as noise.
"""

import random
import time

import pytest

from repro import obs
from repro.core import batch as batch_mod
from repro.core.kernel import _range_scan_plain
from repro.core.phtree import PHTree

LIMIT = 1.05
ATTEMPTS = 6
REPEATS = 7

DIMS = 3
WIDTH = 16
DOMAIN = (1 << WIDTH) - 1


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(61)
    # These pins time the object engine's per-call twin dispatch against
    # its own plain kernels, so the layout is fixed regardless of the
    # session default.
    tree = PHTree(dims=DIMS, width=WIDTH, layout="object")
    keys = list(
        {
            tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
            for _ in range(4000)
        }
    )
    for key in keys:
        tree.put(key, None)
    boxes = []
    for _ in range(30):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        hi = tuple(min(v + (1 << (WIDTH - 2)), DOMAIN) for v in lo)
        boxes.append((lo, hi))
    return tree, keys, boxes


def _best(func, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _assert_overhead(dispatching, plain):
    assert not obs.is_enabled()
    ratios = []
    for _ in range(ATTEMPTS):
        t_dispatch = _best(dispatching)
        t_plain = _best(plain)
        ratio = t_dispatch / t_plain
        if ratio <= LIMIT:
            return
        ratios.append(round(ratio, 4))
    pytest.fail(
        f"disabled-path overhead exceeded {LIMIT:.0%} in every attempt: "
        f"{ratios}"
    )


def test_get_many_disabled_overhead_under_5_percent(workload):
    tree, keys, _boxes = workload
    _assert_overhead(
        lambda: tree.get_many(keys),
        lambda: batch_mod._get_many_plain(tree, keys),
    )


def test_query_disabled_overhead_under_5_percent(workload):
    tree, _keys, boxes = workload
    root = tree.root

    def dispatching():
        total = 0
        for lo, hi in boxes:
            for _ in tree.query(lo, hi):
                total += 1
        return total

    def plain():
        total = 0
        for lo, hi in boxes:
            for _ in _range_scan_plain(root, lo, hi, 0):
                total += 1
        return total

    assert dispatching() == plain()
    _assert_overhead(dispatching, plain)


def test_disabled_flag_is_a_module_attribute():
    """The contract the dual-engine dispatch relies on: the flag is a
    plain module attribute, flipped in place by enable()/disable()."""
    from repro.obs import runtime

    assert runtime.enabled is False
    obs.enable()
    try:
        assert runtime.enabled is True
    finally:
        obs.disable()
    assert runtime.enabled is False


@pytest.fixture(scope="module")
def sharded_workload():
    """A live sharded tree plus the boxes its span-instrumented query
    path will be timed on (PR 8: heat/span/recorder wiring)."""
    from repro.parallel.sharded import ShardedPHTree

    rng = random.Random(62)
    items = list(
        {
            tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS)): None
            for _ in range(4000)
        }.items()
    )
    tree = ShardedPHTree.build(
        items, dims=DIMS, width=WIDTH, shards=4, workers=0
    )
    boxes = []
    for _ in range(20):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        hi = tuple(min(v + (1 << (WIDTH - 1)), DOMAIN) for v in lo)
        boxes.append((lo, hi))
    yield tree, boxes
    tree.close()


def test_sharded_query_span_machinery_overhead_under_5_percent(
    sharded_workload,
):
    """With obs disabled and no active trace, the span/heat/recorder
    wiring on the sharded query path costs one ContextVar.get and one
    flag test per call -- pinned against the bare per-shard loop."""
    tree, boxes = sharded_workload

    def dispatching():
        total = 0
        for lo, hi in boxes:
            total += len(tree.query(lo, hi))
        return total

    def plain():
        total = 0
        for lo, hi in boxes:
            for index in tree._router.shards_for_box(lo, hi):
                total += len(tree._shards[index].query(lo, hi))
        return total

    assert dispatching() == plain()
    _assert_overhead(dispatching, plain)
