"""Plan-cache probes for the arena engine's generated scan kernels:
hits, misses and epoch invalidations, exposed through the registry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import specialize
from repro.core.phtree import PHTree

DOMAIN = ((0, 0), (65535, 65535))


@pytest.fixture(autouse=True)
def clean_counts():
    specialize.reset_plan_cache_counts()
    yield
    specialize.reset_plan_cache_counts()


def _arena_tree(n=48):
    tree = PHTree(dims=2, width=16, layout="arena")
    for i in range(n):
        tree.put((i * 251 % 65536, i * 509 % 65536), i)
    return tree


class TestCounts:
    def test_window_miss_then_invalidation(self):
        tree = _arena_tree()
        before = list(specialize.PLAN_CACHE_WINDOW)
        list(tree.query(*DOMAIN))
        after_first = list(specialize.PLAN_CACHE_WINDOW)
        assert after_first[1] > before[1]  # misses: plans were built
        assert after_first[2] == before[2]
        tree.put((7, 7), None)  # epoch bump
        list(tree.query(*DOMAIN))
        after_mutation = list(specialize.PLAN_CACHE_WINDOW)
        assert after_mutation[2] == after_first[2] + 1  # one clear
        assert after_mutation[1] > after_first[1]  # plans rebuilt

    def test_window_hits_counted_in_instrumented_twins(self, obs_enabled):
        # The specialized fast path skips all counting; hit telemetry
        # comes from the instrumented twins, i.e. with obs enabled.
        tree = _arena_tree()
        list(tree.query(*DOMAIN))  # warm the plan cache
        before = list(specialize.PLAN_CACHE_WINDOW)
        list(tree.query(*DOMAIN))
        after = list(specialize.PLAN_CACHE_WINDOW)
        assert after[0] > before[0]  # hits moved
        assert after[1] == before[1]  # no rebuild

    def test_get_many_counts(self, obs_enabled):
        tree = _arena_tree()
        keys = [(i * 251 % 65536, i * 509 % 65536) for i in range(16)]
        tree.get_many(keys)
        misses = specialize.PLAN_CACHE_GET_MANY[1]
        assert misses >= 1
        tree.get_many(keys)
        assert specialize.PLAN_CACHE_GET_MANY[0] >= 1  # hits
        assert specialize.PLAN_CACHE_GET_MANY[1] == misses

    def test_no_invalidation_count_for_empty_cache(self):
        tree = _arena_tree()
        # First query after a mutation with an empty cache must not be
        # counted as an invalidation -- there was nothing to discard.
        before = specialize.PLAN_CACHE_WINDOW[2]
        list(tree.query(*DOMAIN))
        assert specialize.PLAN_CACHE_WINDOW[2] == before

    def test_reset_zeroes_in_place(self):
        window = specialize.PLAN_CACHE_WINDOW
        window[0], window[1], window[2] = 3, 4, 5
        specialize.reset_plan_cache_counts()
        assert window == [0, 0, 0]  # same list object, zeroed
        assert specialize.PLAN_CACHE_GET_MANY == [0, 0, 0]


class TestRegistryExposure:
    def test_gauge_published_via_collector(self, obs_enabled):
        tree = _arena_tree()
        list(tree.query(*DOMAIN))
        payload = obs.dump_json()
        family = payload["repro_plan_cache_events"]
        assert family["type"] == "gauge"
        values = {
            (v["labels"]["kernel"], v["labels"]["event"]): v["value"]
            for v in family["values"]
        }
        assert values[("window", "miss")] >= 1
        assert set(k for k, _ in values) <= {"window", "get_many"}

    def test_reset_all_clears_counts(self, obs_enabled):
        tree = _arena_tree()
        list(tree.query(*DOMAIN))
        assert specialize.PLAN_CACHE_WINDOW[1] >= 1
        obs.reset_all()
        assert specialize.PLAN_CACHE_WINDOW == [0, 0, 0]
        payload = obs.dump_json()
        values = [
            v["value"]
            for v in payload["repro_plan_cache_events"]["values"]
        ]
        assert all(v == 0 for v in values)
