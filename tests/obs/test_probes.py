"""Probe correctness: the counters must agree with ground truth.

The satellite acceptance check lives here: after a mixed insert/delete
workload, the kernel-probe counters of a full-domain window query must
agree exactly with :func:`repro.core.stats.collect_stats` (node count,
HC/LHC split), and the tree-shape accounting (nodes created minus nodes
merged) must equal the live node count.
"""

import random

import pytest

from repro import obs
from repro.core.phtree import PHTree
from repro.core.stats import collect_stats
from repro.obs import probes

DIMS = 3
WIDTH = 16
DOMAIN = (1 << WIDTH) - 1


def _mixed_workload(seed=11, n=600, n_remove=250):
    """Insert n random keys, remove n_remove of them (some twice)."""
    rng = random.Random(seed)
    keys = list(
        {
            tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
            for _ in range(n)
        }
    )
    tree = PHTree(dims=DIMS, width=WIDTH)
    for key in keys:
        tree.put(key, None)
    removed = keys[:n_remove]
    for key in removed:
        tree.remove(key)
    for key in removed[: n_remove // 4]:  # misses exercise the miss path
        tree.remove(key, default=None)
    return tree, keys


class TestKernelVsCollectStats:
    def test_full_domain_query_visits_every_node_once(self, obs_enabled):
        tree, _keys = _mixed_workload()
        stats = collect_stats(tree)
        obs.reset()
        results = list(tree.query((0,) * DIMS, (DOMAIN,) * DIMS))
        assert len(results) == len(tree)
        assert probes.kernel_nodes_visited.value == stats.n_nodes
        assert probes.kernel_hc_nodes_visited.value == stats.n_hc_nodes
        assert probes.kernel_lhc_nodes_visited.value == stats.n_lhc_nodes
        assert probes.kernel_entries_yielded.value == len(tree)
        # Every non-root node is reached through a pushed frame.
        assert probes.kernel_frames_pushed.value == stats.n_nodes - 1

    def test_forced_hc_and_lhc_modes_flip_the_split(self, obs_enabled):
        for mode, hc_expected in (("hc", True), ("lhc", False)):
            tree = PHTree(dims=2, width=8, hc_mode=mode)
            rng = random.Random(3)
            for _ in range(200):
                tree.put(
                    (rng.randrange(256), rng.randrange(256)), None
                )
            stats = collect_stats(tree)
            obs.reset()
            list(tree.query((0, 0), (255, 255)))
            if hc_expected:
                assert stats.n_hc_nodes > 0
                assert (
                    probes.kernel_hc_nodes_visited.value
                    == stats.n_hc_nodes
                )
            else:
                assert stats.n_lhc_nodes == stats.n_nodes
                assert (
                    probes.kernel_lhc_nodes_visited.value
                    == stats.n_nodes
                )


class TestTreeShapeAccounting:
    def test_created_minus_merged_equals_live_nodes(self, obs_enabled):
        tree, _keys = _mixed_workload(seed=5)
        stats = collect_stats(tree)
        created = probes.tree_nodes_created.value
        merged = probes.tree_nodes_merged.value
        assert created > 0
        assert merged > 0
        assert created - merged == stats.n_nodes

    def test_root_drop_counts_as_merge(self, obs_enabled):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2), None)
        tree.remove((1, 2))
        assert tree.root is None
        assert probes.tree_nodes_merged.value == 1

    def test_insert_depth_histogram_counts_inserts_only(
        self, obs_enabled
    ):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2), "a")
        tree.put((3, 4), "b")
        tree.put((1, 2), "updated")  # value update, not an insert
        assert probes.insert_depth.count == 2


class TestPointAndWriteDescents:
    def test_point_descent_counts_levels(self, obs_enabled):
        tree, keys = _mixed_workload(seed=7)
        depth_bound = tree.width
        obs.reset()
        hits = sum(1 for key in keys if tree.contains(key))
        assert hits == len(tree)
        visited = probes.point_nodes_visited.value
        assert probes.ops.labels("contains").value == len(keys)
        # At least one node per lookup, at most the depth bound per.
        assert len(keys) <= visited <= len(keys) * depth_bound

    def test_get_dispatches_by_flag(self):
        tree = PHTree(dims=2, width=8)
        tree.put((1, 2), "a")
        obs.reset()
        assert tree.get((1, 2)) == "a"  # disabled: no counting
        assert probes.point_nodes_visited.value == 0
        obs.enable()
        try:
            assert tree.get((1, 2)) == "a"
            assert probes.point_nodes_visited.value > 0
        finally:
            obs.disable()
            obs.reset()


class TestContainerSwitches:
    def test_hysteresis_free_growth_records_switches(self, obs_enabled):
        # 2-dim tree: nodes switch LHC -> HC as they fill past the
        # size crossover, and back on removals.
        tree = PHTree(dims=2, width=8)
        rng = random.Random(13)
        keys = list(
            {
                (rng.randrange(256), rng.randrange(256))
                for _ in range(300)
            }
        )
        for key in keys:
            tree.put(key, None)
        to_hc = probes.switch_to_hc.value
        assert to_hc > 0
        for key in keys:
            tree.remove(key)
        assert probes.switch_to_lhc.value > 0


class TestBatchProbes:
    def test_get_many_counts_keys_and_shares_descents(self, obs_enabled):
        tree, keys = _mixed_workload(seed=9)
        live = [key for key in keys if tree.contains(key)]
        obs.reset()
        values = tree.get_many(live)
        assert len(values) == len(live)
        assert probes.batch_keys_get.value == len(live)
        assert probes.ops.labels("get_many").value == 1
        # The merge-join must share descents: strictly fewer node
        # entries than the sequential path would make.
        obs.reset()
        for key in live:
            tree.get(key)
        sequential = probes.point_nodes_visited.value
        obs.reset()
        tree.get_many(live)
        assert 0 < probes.batch_nodes_visited.value < sequential

    def test_query_many_visits_nodes_once_for_the_batch(
        self, obs_enabled
    ):
        tree, _keys = _mixed_workload(seed=21)
        box = ((0,) * DIMS, (DOMAIN // 2,) * DIMS)
        obs.reset()
        tree.query_many([box])
        once = probes.qmany_nodes_visited.value
        obs.reset()
        tree.query_many([box, box, box])
        thrice = probes.qmany_nodes_visited.value
        assert once > 0
        # Batching three identical boxes must not triple the walk.
        assert thrice < 3 * once


class TestKnnProbes:
    def test_knn_counts_and_high_water(self, obs_enabled):
        tree, keys = _mixed_workload(seed=17)
        obs.reset()
        results = tree.knn(keys[0], 10)
        assert len(results) == 10
        assert probes.ops.labels("knn").value == 1
        assert probes.knn_entries_yielded.value == 10
        assert probes.knn_regions_expanded.value > 0
        assert (
            probes.knn_heap_high_water.value
            >= probes.knn_regions_expanded.value > 0
        ) or probes.knn_heap_high_water.value > 0

    def test_abandoned_nearest_iter_still_flushes(self, obs_enabled):
        tree, keys = _mixed_workload(seed=23)
        obs.reset()
        iterator = tree.nearest_iter(keys[0])
        next(iterator)
        iterator.close()
        assert probes.knn_regions_expanded.value > 0
        assert probes.knn_entries_yielded.value == 1


class TestAbandonedQueryFlush:
    def test_partial_query_consumption_reports_counters(
        self, obs_enabled
    ):
        tree, _keys = _mixed_workload(seed=27)
        obs.reset()
        iterator = tree.query((0,) * DIMS, (DOMAIN,) * DIMS)
        next(iterator)
        iterator.close()
        assert 0 < probes.kernel_nodes_visited.value
        assert probes.kernel_entries_yielded.value == 1


class TestDisabledIsSilent:
    def test_no_counter_moves_with_obs_off(self):
        obs.reset()
        tree, keys = _mixed_workload()
        list(tree.query((0,) * DIMS, (DOMAIN,) * DIMS))
        tree.get_many(keys[:20])
        tree.knn(keys[0], 3)
        dump = obs.dump_json()
        # Collector-backed families publish point-in-time structural
        # state (arena census, plan-cache build counts) regardless of
        # the obs switch; only op-driven probes must stay silent.
        collector_backed = (
            "repro_arena_",
            "repro_plan_cache_",
            "repro_flight_recorder_",  # always-on ring's lifetime seq
            "repro_heat_",  # heat-map census, cleared by reset_all()
        )
        for name, family in dump.items():
            if name.startswith(collector_backed):
                continue
            for sample in family["values"]:
                value = sample["value"]
                if isinstance(value, dict):
                    assert value["count"] == 0, name
                else:
                    assert value == 0, name
