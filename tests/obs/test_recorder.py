"""Flight recorder: ring semantics and the structural event sites."""

from __future__ import annotations

import pytest

from repro.core.phtree import PHTree
from repro.obs import recorder as recorder_mod
from repro.obs.recorder import FlightRecorder, render_events


@pytest.fixture(autouse=True)
def clean_recorder():
    recorder_mod.clear()
    yield
    recorder_mod.clear()


class TestFlightRecorder:
    def test_record_and_dump(self):
        rec = FlightRecorder(capacity=8)
        rec.record("split", level=3)
        rec.record("merge")
        events = rec.dump()
        assert [e[2] for e in events] == ["split", "merge"]
        assert events[0][3] == {"level": 3}
        assert events[0][0] == 1 and events[1][0] == 2
        assert events[1][1] >= events[0][1]

    def test_ring_drops_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("op", i=i)
        assert len(rec) == 4
        assert rec.seq == 10
        assert [e[3]["i"] for e in rec.dump()] == [6, 7, 8, 9]

    def test_dump_last(self):
        rec = FlightRecorder(capacity=16)
        for i in range(6):
            rec.record("op", i=i)
        assert [e[3]["i"] for e in rec.dump(last=2)] == [4, 5]
        assert len(rec.dump(last=100)) == 6
        assert rec.dump(last=0) == []

    def test_clear_resets_sequence(self):
        rec = FlightRecorder()
        rec.record("x")
        rec.clear()
        assert len(rec) == 0 and rec.seq == 0
        rec.record("y")
        assert rec.dump()[0][0] == 1

    def test_render(self):
        rec = FlightRecorder()
        rec.record("split", level=7)
        rec.record("lock_timeout", mode="write")
        text = rec.render()
        assert "last 2 of 2 events" in text
        assert "split" in text and "level=7" in text
        assert "mode='write'" in text
        assert "+0.000s" in text  # newest event is the reference point

    def test_render_empty(self):
        assert "(empty)" in FlightRecorder().render()

    def test_render_events_standalone(self):
        rec = FlightRecorder()
        rec.record("fault_injected", fault="worker_killed")
        captured = rec.dump()
        rec.clear()  # the live ring moves on; the capture must not
        text = render_events(captured)
        assert "worker_killed" in text
        assert render_events([]) == "flight recorder: (empty)\n"

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestStructuralEventSites:
    @pytest.mark.parametrize("layout", ["object", "arena"])
    def test_splits_and_merges_recorded_when_enabled(
        self, layout, obs_enabled
    ):
        recorder_mod.clear()
        tree = PHTree(dims=2, width=16, layout=layout)
        keys = [(i * 977 % 65536, i * 641 % 65536) for i in range(64)]
        for key in keys:
            tree.put(key, None)
        for key in keys:
            tree.remove(key)
        kinds = {e[2] for e in recorder_mod.dump()}
        assert "split" in kinds
        assert "merge" in kinds

    def test_disabled_hot_path_records_nothing(self):
        tree = PHTree(dims=2, width=16)
        for i in range(64):
            tree.put((i * 977 % 65536, i * 641 % 65536), None)
        assert len(recorder_mod.get_recorder()) == 0

    def test_plan_cache_invalidation_recorded_unconditionally(self):
        # A rare structural event: recorded even with obs disabled.
        tree = PHTree(dims=2, width=16, layout="arena")
        for i in range(32):
            tree.put((i * 101 % 65536, i * 373 % 65536), None)
        list(tree.query((0, 0), (65535, 65535)))  # builds plan cache
        tree.put((9, 9), None)  # bumps the mutation epoch
        list(tree.query((0, 0), (65535, 65535)))  # invalidates
        kinds = [e[2] for e in recorder_mod.dump()]
        assert "plan_cache_invalidation" in kinds

    def test_lock_timeout_recorded(self):
        import threading

        from repro.core.concurrent import LockTimeout, ReadWriteLock

        lock = ReadWriteLock()
        held = threading.Event()
        release = threading.Event()

        def camper():
            with lock.read():
                held.set()
                release.wait()

        thread = threading.Thread(target=camper, daemon=True)
        thread.start()
        assert held.wait(5.0)
        try:
            with pytest.raises(LockTimeout):
                with lock.write(timeout=0.01):
                    pass
        finally:
            release.set()
            thread.join(5.0)
        events = [e for e in recorder_mod.dump() if e[2] == "lock_timeout"]
        assert events and events[-1][3]["mode"] == "write"
