"""Request-scoped spans: context propagation, remote splicing, and the
waterfall across the sharded fan-out."""

from __future__ import annotations

import threading

import pytest

from repro.obs.span import (
    Span,
    Trace,
    current_trace,
    maybe_span,
    start_trace,
)
from repro.parallel.sharded import ShardedPHTree


class TestTrace:
    def test_no_trace_by_default(self):
        assert current_trace() is None

    def test_start_trace_sets_and_restores(self):
        with start_trace() as trace:
            assert current_trace() is trace
        assert current_trace() is None
        assert trace.t1 is not None  # finished on exit

    def test_nested_traces_stack(self):
        with start_trace() as outer:
            with start_trace() as inner:
                assert current_trace() is inner
            assert current_trace() is outer

    def test_trace_isolated_per_thread(self):
        seen = []

        def probe():
            seen.append(current_trace())

        with start_trace():
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [None]

    def test_span_context_manager_times_block(self):
        trace = Trace()
        with trace.span("work", shard=3) as span:
            pass
        assert trace.spans == [span]
        assert span.name == "work"
        assert span.labels == {"shard": 3}
        assert span.end >= span.start

    def test_add_and_add_remote(self):
        trace = Trace()
        trace.add("local", 1.0, 2.0, shard=0)
        trace.add_remote([("attach", 2.0, 2.5), ("scan", 2.5, 4.0)],
                         shard=1)
        names = [s.name for s in trace.spans]
        assert names == ["local", "attach", "scan"]
        assert all(s.labels.get("shard") == 1 for s in trace.spans[1:])
        assert trace.spans[2].duration_s == pytest.approx(1.5)

    def test_negative_duration_clamped(self):
        assert Span("x", 2.0, 1.0).duration_s == 0.0

    def test_maybe_span_no_ops_without_trace(self):
        with maybe_span(None, "anything") as span:
            assert span is None
        trace = Trace()
        with maybe_span(trace, "hop") as span:
            assert span is not None
        assert [s.name for s in trace.spans] == ["hop"]

    def test_to_dict_sorted_by_start(self):
        trace = Trace(trace_id=42)
        trace.add("late", 5.0, 6.0)
        trace.add("early", 1.0, 2.0)
        payload = trace.to_dict()
        assert payload["trace_id"] == 42
        assert [s["name"] for s in payload["spans"]] == ["early", "late"]

    def test_render_waterfall(self):
        with start_trace() as trace:
            with trace.span("route"):
                pass
            trace.add("scan", trace.t0, trace.t0 + 1e-4, shard=2)
        text = trace.render()
        assert "span waterfall" in text
        assert "route" in text
        assert "scan shard=2" in text
        assert "=" in text


class TestShardedSpans:
    # Keys spread over the full 16-bit domain so a domain-wide window
    # genuinely touches every z-shard.
    @pytest.fixture()
    def sharded(self):
        items = [
            ((x * 3000, y * 3000), x * 100 + y)
            for x in range(20)
            for y in range(20)
        ]
        with ShardedPHTree.build(
            items, dims=2, width=16, shards=4, workers=0
        ) as tree:
            yield tree

    def test_query_records_route_lock_scan(self, sharded):
        with start_trace() as trace:
            results = sharded.query((0, 0), (65535, 65535))
        assert len(results) == 400
        names = [s.name for s in trace.spans]
        assert names.count("route") == 1
        assert names.count("lock_wait") == sharded.n_shards
        assert names.count("scan") == sharded.n_shards
        shards = {
            s.labels["shard"] for s in trace.spans if s.name == "scan"
        }
        assert shards == set(range(sharded.n_shards))
        # Spans sit inside the trace window.
        for span in trace.spans:
            assert span.start >= trace.t0
            assert span.end <= trace.t1

    def test_query_without_trace_records_nothing(self, sharded):
        results = sharded.query((0, 0), (65535, 65535))
        assert len(results) == 400
        assert current_trace() is None

    def test_query_many_records_per_shard_spans(self, sharded):
        with start_trace() as trace:
            results = sharded.query_many(
                [((0, 0), (65535, 65535)), ((5, 5), (6, 6))]
            )
        assert len(results[0]) == 400
        names = [s.name for s in trace.spans]
        assert "lock_wait" in names
        assert "scan" in names

    def test_knn_records_scan_and_merge(self, sharded):
        with start_trace() as trace:
            results = sharded.knn((30000, 30000), 3)
        assert len(results) == 3
        names = [s.name for s in trace.spans]
        assert names.count("merge") == 1
        # Shards whose region cannot beat the n-th best are pruned.
        assert 1 <= names.count("scan") <= sharded.n_shards

    def test_results_identical_with_and_without_trace(self, sharded):
        plain = sharded.query((0, 0), (65535, 65535))
        with start_trace():
            traced = sharded.query((0, 0), (65535, 65535))
        assert traced == plain


class TestWorkerSpans:
    def test_remote_spans_ship_back_from_the_pool(self):
        items = [
            ((x * 4000, y * 4000), None)
            for x in range(16)
            for y in range(16)
        ]
        with ShardedPHTree.build(
            items, dims=2, width=16, shards=2, workers=1
        ) as tree:
            with start_trace() as trace:
                results = tree.query((0, 0), (65535, 65535))
            assert len(results) == 256
            names = [s.name for s in trace.spans]
            assert "refresh" in names
            assert "fanout" in names
            # Worker-side spans spliced onto the parent timeline.
            assert names.count("attach") == 2
            assert names.count("scan") == 2
            for span in trace.spans:
                if span.name in ("attach", "scan"):
                    assert "shard" in span.labels
                    assert span.start >= trace.t0 - 1e-3
