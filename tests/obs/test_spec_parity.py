"""Instrumentation parity over the specialized kernels.

The per-(k, width) kernels of :mod:`repro.core.specialize` carry their
own instrumented twins, generated from the same template as the plain
ones.  These tests pin the whole contract:

- with observability on, the specialized engines return identical
  results AND publish identical probe counts to the generic
  instrumented engines (counter-for-counter),
- point ops on a specialized tree fall back to the generic instrumented
  descent when observability is on, so per-op counters are identical to
  a generic tree's,
- with observability off, the public dispatching entry points stay
  within the 5% overhead pin over the specialized plain twins.
"""

import random
import time

import pytest

from repro import obs
from repro.core import batch as batch_mod
from repro.core import kernel as kernel_mod
from repro.obs import probes
from repro.core.phtree import PHTree

DIMS = 3
WIDTH = 16
DOMAIN = (1 << WIDTH) - 1

LIMIT = 1.05
ATTEMPTS = 6
REPEATS = 7


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(67)
    # Spec-twin parity and its overhead pins exercise the object
    # engine's generated kernels; fix the layout regardless of the
    # session default.
    tree = PHTree(dims=DIMS, width=WIDTH, layout="object")
    keys = list(
        {
            tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
            for _ in range(4000)
        }
    )
    for key in keys:
        tree.put(key, None)
    boxes = []
    for _ in range(30):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        hi = tuple(min(v + (1 << (WIDTH - 2)), DOMAIN) for v in lo)
        boxes.append((lo, hi))
    return tree, keys, boxes


def _counts():
    # Collector-backed families (arena census, plan cache, flight
    # recorder, heat map) reflect process-lifetime structural state,
    # not per-workload probe activity -- exclude them from parity.
    state = ("repro_arena_", "repro_plan_cache_",
             "repro_flight_recorder_", "repro_heat_")
    return {
        name: family
        for name, family in probes.registry.dump_json().items()
        if not name.startswith(state)
    }


class TestInstrumentedParity:
    def test_range_scan_counts_identical(self, workload, obs_enabled):
        tree, _keys, boxes = workload
        spec = tree.specialization
        assert spec is not None
        for lo, hi in boxes:
            obs.reset()
            expected = list(
                kernel_mod._range_scan_instrumented(tree.root, lo, hi)
            )
            expected_counts = _counts()
            obs.reset()
            got = list(spec.range_scan_instrumented(tree.root, lo, hi))
            assert got == expected
            assert _counts() == expected_counts

    def test_range_scan_approx_counts_identical(
        self, workload, obs_enabled
    ):
        tree, _keys, boxes = workload
        spec = tree.specialization
        for lo, hi in boxes[:10]:
            obs.reset()
            expected = list(
                kernel_mod._range_scan_instrumented(tree.root, lo, hi, 3)
            )
            expected_counts = _counts()
            obs.reset()
            got = list(
                spec.range_scan_instrumented(tree.root, lo, hi, 3)
            )
            assert got == expected
            assert _counts() == expected_counts

    def test_get_many_counts_identical(self, workload, obs_enabled):
        tree, keys, _boxes = workload
        spec = tree.specialization
        rng = random.Random(71)
        batch = keys[:1000] + [
            tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
            for _ in range(300)
        ]
        for presorted in (False, True):
            obs.reset()
            expected = batch_mod._get_many_instrumented(
                tree, batch, presorted=presorted
            )
            expected_counts = _counts()
            obs.reset()
            got = spec.get_many_instrumented(
                tree, batch, presorted=presorted
            )
            assert got == expected
            assert _counts() == expected_counts

    def test_dispatch_selects_instrumented_twin(
        self, workload, obs_enabled
    ):
        # The public entry points must publish probes on a specialized
        # tree exactly like before.
        tree, keys, boxes = workload
        obs.reset()
        tree.get_many(keys[:100])
        assert probes.ops_get_many.value == 1
        assert probes.batch_keys_get.value == 100
        obs.reset()
        total = sum(1 for _ in tree.query(*boxes[0]))
        assert probes.ops_query.value == 1
        assert probes.kernel_entries_yielded.value == total

    def test_point_ops_counts_match_generic_tree(self, obs_enabled):
        rng = random.Random(73)
        keys = list(
            {
                tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
                for _ in range(500)
            }
        )
        obs.reset()
        spec_tree = PHTree(dims=DIMS, width=WIDTH)
        for key in keys:
            spec_tree.put(key, None)
        for key in keys:
            spec_tree.get(key)
        spec_counts = _counts()
        obs.reset()
        generic_tree = PHTree(dims=DIMS, width=WIDTH, specialize=False)
        for key in keys:
            generic_tree.put(key, None)
        for key in keys:
            generic_tree.get(key)
        assert _counts() == spec_counts


class TestDisabledOverheadPin:
    def _assert_overhead(self, dispatching, plain):
        assert not obs.is_enabled()
        ratios = []
        for _ in range(ATTEMPTS):
            t_dispatch = _best(dispatching)
            t_plain = _best(plain)
            ratio = t_dispatch / t_plain
            if ratio <= LIMIT:
                return
            ratios.append(round(ratio, 4))
        pytest.fail(
            f"disabled-path overhead exceeded {LIMIT:.0%} in every "
            f"attempt: {ratios}"
        )

    def test_get_many_overhead_over_spec_twin(self, workload):
        tree, keys, _boxes = workload
        spec = tree.specialization
        self._assert_overhead(
            lambda: tree.get_many(keys),
            lambda: spec.get_many_plain(tree, keys),
        )

    def test_query_overhead_over_spec_twin(self, workload):
        tree, _keys, boxes = workload
        spec = tree.specialization
        root = tree.root

        def dispatching():
            total = 0
            for lo, hi in boxes:
                for _ in tree.query(lo, hi):
                    total += 1
            return total

        def plain():
            total = 0
            for lo, hi in boxes:
                for _ in spec.range_scan_plain(root, lo, hi, 0):
                    total += 1
            return total

        assert dispatching() == plain()
        self._assert_overhead(dispatching, plain)


def _best(func, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best
