"""explain_query / explain_knn: the trace must mirror the real engines.

The tracer re-implements the kernel's traversal decisions to record
them; these tests pin it to the kernel itself -- same results, and the
trace totals must equal the kernel-probe counters for the same query.
"""

import random

import pytest

from repro import obs
from repro.core.phtree import PHTree
from repro.obs import probes
from repro.obs.trace import explain_knn, explain_query

DIMS = 3
WIDTH = 12
DOMAIN = (1 << WIDTH) - 1


@pytest.fixture(scope="module")
def tree():
    rng = random.Random(41)
    t = PHTree(dims=DIMS, width=WIDTH)
    for _ in range(400):
        t.put(tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS)), None)
    return t


def _boxes(seed=43, count=12):
    rng = random.Random(seed)
    out = [((0,) * DIMS, (DOMAIN,) * DIMS)]  # full domain
    for _ in range(count):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        hi = tuple(min(v + (1 << (WIDTH - 2)), DOMAIN) for v in lo)
        out.append((lo, hi))
    return out


class TestExplainQuery:
    def test_results_equal_the_real_query(self, tree):
        for lo, hi in _boxes():
            trace = explain_query(tree, lo, hi)
            assert trace.results == list(tree.query(lo, hi)), (lo, hi)

    def test_totals_match_kernel_probe_counters(self, tree):
        obs.reset()
        obs.enable()
        try:
            for lo, hi in _boxes(seed=47):
                trace = explain_query(tree, lo, hi)
                obs.reset()
                list(tree.query(lo, hi))
                totals = trace.totals
                assert (
                    totals["nodes_visited"]
                    == probes.kernel_nodes_visited.value
                ), (lo, hi)
                assert (
                    totals["hc_nodes_visited"]
                    == probes.kernel_hc_nodes_visited.value
                )
                assert (
                    totals["lhc_nodes_visited"]
                    == probes.kernel_lhc_nodes_visited.value
                )
                assert (
                    totals["full_cover_flushes"]
                    == probes.kernel_full_cover_flushes.value
                )
                assert (
                    totals["plain_scans"]
                    == probes.kernel_plain_scans.value
                )
                assert (
                    totals["entries_yielded"]
                    == probes.kernel_entries_yielded.value
                )
        finally:
            obs.disable()
            obs.reset()

    def test_trace_records_have_paths_and_modes(self, tree):
        trace = explain_query(tree, (0,) * DIMS, (DOMAIN,) * DIMS)
        assert trace.records
        root = trace.records[0]
        assert root.depth == 0
        modes = {record.mode for record in trace.records}
        assert modes <= {"masked", "scan", "flush"}
        rendered = trace.render()
        assert "window query trace" in rendered
        assert "totals:" in rendered

    def test_record_cap_marks_truncation(self, tree):
        trace = explain_query(
            tree, (0,) * DIMS, (DOMAIN,) * DIMS, max_records=2
        )
        assert trace.truncated
        assert len(trace.records) == 2
        # Totals still cover the whole traversal.
        full = explain_query(tree, (0,) * DIMS, (DOMAIN,) * DIMS)
        assert trace.totals == full.totals

    def test_to_dict_is_json_shaped(self, tree):
        import json

        trace = explain_query(tree, (0,) * DIMS, (0,) * DIMS)
        json.dumps(trace.to_dict())

    def test_empty_tree(self):
        empty = PHTree(dims=2, width=8)
        trace = explain_query(empty, (0, 0), (255, 255))
        assert trace.results == []
        assert trace.totals["nodes_visited"] == 0


class TestExplainKnn:
    def test_results_equal_the_real_knn(self, tree):
        rng = random.Random(51)
        for _ in range(8):
            query = tuple(
                rng.randrange(1 << WIDTH) for _ in range(DIMS)
            )
            for n in (1, 5):
                trace = explain_knn(tree, query, n=n)
                assert trace.results == tree.knn(query, n), (query, n)

    def test_totals_match_knn_probe_counters(self, tree):
        obs.reset()
        obs.enable()
        try:
            query = (5, 500, 50)
            trace = explain_knn(tree, query, n=7)
            obs.reset()
            tree.knn(query, 7)
            assert (
                trace.totals["regions_expanded"]
                == probes.knn_regions_expanded.value
            )
            assert (
                trace.totals["heap_pushes"]
                == probes.knn_heap_pushes.value
            )
            assert (
                trace.totals["heap_high_water"]
                == probes.knn_heap_high_water.value
            )
            assert (
                trace.totals["entries_yielded"]
                == probes.knn_entries_yielded.value
            )
        finally:
            obs.disable()
            obs.reset()

    def test_render_and_dict(self, tree):
        trace = explain_knn(tree, (1, 2, 3), n=2)
        rendered = trace.render()
        assert "kNN trace" in rendered
        import json

        json.dumps(trace.to_dict())

    def test_lazy_wrappers_on_package(self, tree):
        assert obs.explain_query(
            tree, (0,) * DIMS, (DOMAIN,) * DIMS
        ).results == list(tree.query((0,) * DIMS, (DOMAIN,) * DIMS))
        assert (
            obs.explain_knn(tree, (0,) * DIMS, n=1).results
            == tree.knn((0,) * DIMS, 1)
        )
