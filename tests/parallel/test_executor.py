"""The process-pool snapshot engine: zero-copy attach, fan-out
equivalence, and the generation/staleness protocol.

Pool sizes stay small (2 workers) and datasets modest: these tests pin
*correctness* of the multi-process path; throughput lives in the bench.
"""

from __future__ import annotations

import random
from multiprocessing import shared_memory

import pytest

from repro.core.frozen import FrozenPHTree, freeze
from repro.core.phtree import PHTree
from repro.core.serialize import U64ValueCodec
from repro.parallel import ShardedPHTree

WIDTH = 16
DIMS = 3


def _keys(n, seed, dims=DIMS):
    rng = random.Random(seed)
    return list(
        {
            tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
            for _ in range(n)
        }
    )


def _boxes(n, seed, dims=DIMS):
    rng = random.Random(seed)
    top = (1 << WIDTH) - 1
    extent = 1 << (WIDTH - 1)
    out = []
    for _ in range(n):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
        out.append((lo, tuple(min(v + extent, top) for v in lo)))
    return out


class TestFrozenBufferAttach:
    """Satellite: FrozenPHTree over arbitrary buffers, zero-copy."""

    def _tree(self):
        tree = PHTree(dims=2, width=8)
        for key in [(1, 2), (3, 4), (200, 100), (255, 0)]:
            tree.put(key, None)
        return tree

    def test_memoryview_and_bytearray_match_bytes(self):
        blob = freeze(self._tree())
        reference = FrozenPHTree(blob)
        for buffer in (memoryview(blob), bytearray(blob)):
            frozen = FrozenPHTree(buffer)
            assert list(frozen.items()) == list(reference.items())
            assert frozen.nbytes == reference.nbytes == len(blob)

    def test_padded_buffer_reports_exact_nbytes(self):
        """A page-rounded segment is larger than the stream; nbytes and
        memory_bytes still report the exact frozen length."""
        blob = freeze(self._tree())
        padded = memoryview(blob + b"\x00" * 512)
        frozen = FrozenPHTree(padded)
        assert frozen.nbytes == len(blob)
        assert frozen.memory_bytes() == len(blob)
        assert len(frozen) == 4

    def test_shared_memory_attach_is_queryable(self):
        blob = freeze(self._tree())
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
        try:
            segment.buf[: len(blob)] = blob
            frozen = FrozenPHTree(segment.buf)
            assert frozen.contains((200, 100))
            assert sorted(frozen.keys()) == [
                (1, 2),
                (3, 4),
                (200, 100),
                (255, 0),
            ]
            del frozen  # release the view before closing the mapping
        finally:
            segment.close()
            segment.unlink()

    def test_truncated_buffer_rejected(self):
        blob = freeze(self._tree())
        with pytest.raises(ValueError):
            FrozenPHTree(memoryview(blob[: len(blob) - 2]))


class TestSnapshotFanOut:
    def test_parallel_results_equal_oracle(self):
        keys = _keys(1200, seed=1)
        oracle = PHTree(dims=DIMS, width=WIDTH)
        for key in keys:
            oracle.put(key, None)
        with ShardedPHTree.build(
            [(k, None) for k in keys],
            dims=DIMS,
            width=WIDTH,
            shards=8,
            workers=2,
        ) as sharded:
            for lo, hi in _boxes(6, seed=2):
                assert sharded.query(lo, hi) == list(oracle.query(lo, hi))
            boxes = _boxes(5, seed=3)
            assert sharded.query_many(boxes) == oracle.query_many(boxes)
            rng = random.Random(4)
            for _ in range(6):
                q = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
                assert sharded.knn(q, 5) == oracle.knn(q, 5)

    def test_values_round_trip_through_codec(self):
        keys = _keys(300, seed=5)
        entries = [(k, i * 7) for i, k in enumerate(keys)]
        oracle = PHTree(dims=DIMS, width=WIDTH)
        for k, v in entries:
            oracle.put(k, v)
        with ShardedPHTree.build(
            entries,
            dims=DIMS,
            width=WIDTH,
            shards=4,
            workers=2,
            value_codec=U64ValueCodec,
        ) as sharded:
            lo = (0,) * DIMS
            hi = ((1 << WIDTH) - 1,) * DIMS
            assert sharded.query(lo, hi) == list(oracle.query(lo, hi))

    def test_lazy_refresh_after_writes(self):
        """Writes bump generations; the next fan-out republishes only
        the dirty shards and reflects the new state exactly."""
        keys = _keys(400, seed=6)
        oracle = PHTree(dims=DIMS, width=WIDTH)
        for key in keys:
            oracle.put(key, None)
        with ShardedPHTree.build(
            [(k, None) for k in keys],
            dims=DIMS,
            width=WIDTH,
            shards=8,
            workers=1,
        ) as sharded:
            lo = (0,) * DIMS
            hi = ((1 << WIDTH) - 1,) * DIMS
            assert sharded.query(lo, hi) == list(oracle.query(lo, hi))
            assert sharded.refresh_snapshots() == 0  # all fresh

            fresh = tuple((1 << WIDTH) - 1 for _ in range(DIMS))
            if fresh in oracle:
                oracle.remove(fresh)
                sharded.remove(fresh)
            else:
                oracle.put(fresh, None)
                sharded.put(fresh, None)
            # Exactly one shard went stale.
            assert sharded.refresh_snapshots() == 1
            assert sharded.query(lo, hi) == list(oracle.query(lo, hi))

    def test_snapshot_bytes_accounting(self):
        keys = _keys(200, seed=7)
        with ShardedPHTree.build(
            [(k, None) for k in keys],
            dims=DIMS,
            width=WIDTH,
            shards=4,
            workers=1,
        ) as sharded:
            assert sharded.snapshot_bytes() == 0  # nothing published yet
            sharded.refresh_snapshots()
            published = sharded.snapshot_bytes()
            assert published > 0

    def test_set_workers_switches_engines(self):
        keys = _keys(150, seed=8)
        oracle = PHTree(dims=DIMS, width=WIDTH)
        for key in keys:
            oracle.put(key, None)
        sharded = ShardedPHTree.build(
            [(k, None) for k in keys], dims=DIMS, width=WIDTH, shards=4
        )
        try:
            lo = (0,) * DIMS
            hi = ((1 << WIDTH) - 1,) * DIMS
            expected = list(oracle.query(lo, hi))
            assert sharded.query(lo, hi) == expected  # live engine
            sharded.set_workers(1)
            assert sharded.query(lo, hi) == expected  # snapshot engine
            sharded.set_workers(0)
            assert sharded.query(lo, hi) == expected  # live again
        finally:
            sharded.close()

    def test_close_falls_back_to_live_engine(self):
        sharded = ShardedPHTree(dims=2, width=8, shards=2, workers=1)
        sharded.put((1, 1), None)
        assert sharded.query((0, 0), (255, 255)) == [((1, 1), None)]
        sharded.close()
        sharded.close()  # idempotent
        assert sharded.snapshot_bytes() == 0
        # Reads still work, served by the live locked shards.
        assert sharded.query((0, 0), (255, 255)) == [((1, 1), None)]
