"""Fault injection for the parallel layer: every injected fault class
must leave reads correct (or raise a clean typed error) and move its
observability counter."""

from __future__ import annotations

import random
import threading

import pytest

from repro import obs
from repro.check.faults import (
    kill_one_worker,
    publish_failures,
    run_fault_drill,
    slow_reader,
    unlink_failures,
)
from repro.core.concurrent import LockTimeout, ReadWriteLock
from repro.obs import probes
from repro.parallel import (
    ParallelError,
    ShardedPHTree,
    SnapshotPublishError,
    SnapshotReadError,
)

DIMS, WIDTH = 2, 16
DOMAIN_LO = (0,) * DIMS
DOMAIN_HI = ((1 << WIDTH) - 1,) * DIMS


def _items(n=200, seed=31):
    rng = random.Random(seed)
    seen = {}
    for i in range(n):
        seen[tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))] = i
    return list(seen.items())


@pytest.fixture
def pooled_tree():
    items = _items()
    from repro.core.serialize import U64ValueCodec

    with ShardedPHTree.build(
        items,
        dims=DIMS,
        width=WIDTH,
        shards=4,
        workers=2,
        value_codec=U64ValueCodec,
    ) as tree:
        yield tree, dict(items)


@pytest.fixture
def metrics():
    obs.reset()
    obs.enable()
    yield probes
    obs.disable()
    obs.reset()


def test_publish_failure_degrades_to_live(pooled_tree, metrics):
    tree, reference = pooled_tree
    before = metrics.snapshot_publish_failures.value
    with publish_failures(count=1):
        result = tree.query(DOMAIN_LO, DOMAIN_HI)
    assert dict(result) == reference
    assert metrics.snapshot_publish_failures.value == before + 1


def test_publish_failure_is_typed(pooled_tree, metrics):
    tree, _ = pooled_tree
    pool = tree._snapshot_pool()
    with publish_failures(count=1):
        with pytest.raises(SnapshotPublishError) as excinfo:
            pool.refresh()
    # The typed error is a ParallelError: the owning tree's catch-all.
    assert isinstance(excinfo.value, ParallelError)


def test_publish_recovers_after_fault_window(pooled_tree, metrics):
    tree, reference = pooled_tree
    with publish_failures(count=1):
        tree.query(DOMAIN_LO, DOMAIN_HI)  # consumes the fault
    # Out of the window: publication and fan-out work again.
    assert dict(tree.query(DOMAIN_LO, DOMAIN_HI)) == reference
    assert tree._snapshot_pool().snapshot_bytes() > 0


def test_worker_death_falls_back_then_recovers(pooled_tree, metrics):
    tree, reference = pooled_tree
    assert dict(tree.query(DOMAIN_LO, DOMAIN_HI)) == reference  # warm up
    pool = tree._snapshot_pool()
    before = metrics.fanout_failures.labels("query").value
    kill_one_worker(pool)
    assert dict(tree.query(DOMAIN_LO, DOMAIN_HI)) == reference
    assert metrics.fanout_failures.labels("query").value == before + 1
    # The broken executor was recycled: the next fan-out succeeds on a
    # fresh pool without touching the failure counter again.
    assert dict(tree.query(DOMAIN_LO, DOMAIN_HI)) == reference
    assert metrics.fanout_failures.labels("query").value == before + 1


def test_worker_death_raises_typed_error_at_pool_level(
    pooled_tree, metrics
):
    tree, _ = pooled_tree
    tree.query(DOMAIN_LO, DOMAIN_HI)  # publish + start workers
    pool = tree._snapshot_pool()
    kill_one_worker(pool)
    with pytest.raises(SnapshotReadError):
        pool.query(DOMAIN_LO, DOMAIN_HI, range(tree.n_shards))


def test_unlink_failure_is_survived_and_counted(pooled_tree, metrics):
    tree, reference = pooled_tree
    tree.query(DOMAIN_LO, DOMAIN_HI)  # publish generation 1
    key = next(iter(reference))
    tree.put(key, reference[key])  # bump one shard's generation
    pool = tree._snapshot_pool()
    before = metrics.snapshot_discard_errors.value
    with unlink_failures(pool, count=1) as state:
        republished = pool.refresh()
    assert republished == 1
    assert state["remaining"] == 0
    assert metrics.snapshot_discard_errors.value == before + 1
    assert dict(tree.query(DOMAIN_LO, DOMAIN_HI)) == reference


def test_slow_reader_blocks_writer_with_timeout(pooled_tree, metrics):
    tree, _ = pooled_tree
    before = metrics.lock_timeouts.labels("write").value
    with slow_reader(tree, shard=0):
        with pytest.raises(LockTimeout):
            with tree._shards[0].lock.write(timeout=0.05):
                pass  # pragma: no cover
    assert metrics.lock_timeouts.labels("write").value == before + 1
    # The reader is gone; the write goes through.
    with tree._shards[0].lock.write(timeout=1.0):
        pass


def test_read_timeout_behind_writer(metrics):
    lock = ReadWriteLock()
    lock.acquire_write()
    before = metrics.lock_timeouts.labels("read").value
    failures = []

    def reader():
        try:
            lock.acquire_read(timeout=0.05)
        except LockTimeout as exc:
            failures.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    thread.join(timeout=5.0)
    lock.release_write()
    assert len(failures) == 1
    assert metrics.lock_timeouts.labels("read").value == before + 1
    # The abandoned read didn't wedge the lock.
    with lock.read():
        pass
    with lock.write():
        pass


def test_write_timeout_does_not_wedge_queued_readers():
    lock = ReadWriteLock()
    lock.acquire_read()  # camping reader

    got_read = threading.Event()

    def late_reader():
        # Queued behind the (doomed) writer; must proceed once the
        # writer gives up.
        with lock.read():
            got_read.set()

    def doomed_writer():
        with pytest.raises(LockTimeout):
            lock.acquire_write(timeout=0.1)

    writer = threading.Thread(target=doomed_writer)
    writer.start()
    # Give the writer time to queue, then line a reader up behind it.
    import time

    time.sleep(0.02)
    reader = threading.Thread(target=late_reader)
    reader.start()
    writer.join(timeout=5.0)
    assert got_read.wait(timeout=5.0), (
        "reader stayed wedged behind an abandoned writer"
    )
    reader.join(timeout=5.0)
    lock.release_read()


def test_fault_drill_all_pass():
    outcomes = run_fault_drill(entries=128)
    assert [o.fault for o in outcomes] == [
        "publish-failure",
        "worker-death",
        "unlink-failure",
        "lock-timeout",
        "disk-flush-kill",
        "disk-compact-kill",
        "disk-torn-wal",
    ]
    assert all(o.passed for o in outcomes), [
        f"{o.fault}: {o.detail}" for o in outcomes if not o.passed
    ]


def test_fault_drill_kind_selection():
    outcomes = run_fault_drill(
        entries=64, kinds=["lock-timeout", "disk-torn-wal"]
    )
    assert [o.fault for o in outcomes] == [
        "lock-timeout",
        "disk-torn-wal",
    ]
    assert all(o.passed for o in outcomes), [
        f"{o.fault}: {o.detail}" for o in outcomes if not o.passed
    ]
    with pytest.raises(ValueError, match="unknown fault kind"):
        run_fault_drill(kinds=["no-such-fault"])


def test_disk_kill_drill_recovers_to_oracle():
    """A seeded SIGKILL inside the flush I/O leaves a directory that
    reopens validator-green with exactly the workload's contents."""
    (outcome,) = run_fault_drill(
        entries=96, kinds=["disk-flush-kill"]
    )
    assert outcome.passed, outcome.detail
    assert "child killed=True" in outcome.detail
    assert "contents==oracle=True" in outcome.detail
    # The flight-recorder tail carries the injection record with the
    # seeded offset and the phase's measured I/O volume.
    injected = [
        event
        for event in outcome.events
        if event[2] == "fault_injected"
        and event[3].get("fault") == "disk_flush_kill"
    ]
    assert injected, [event[2] for event in outcome.events]
    detail = injected[-1][3]
    assert 0 <= detail["offset"] < detail["volume"]
    assert detail["returncode"] < 0  # died by signal


def test_fault_drill_outcomes_carry_recorder_dumps():
    """Every drill scenario ships a flight-recorder tail, and the
    killed-worker scenario's dump includes the injected fault."""
    from repro.obs import recorder as recorder_mod

    recorder_mod.clear()
    outcomes = {o.fault: o for o in run_fault_drill(entries=128)}
    for outcome in outcomes.values():
        assert outcome.events, outcome.fault
    killed = outcomes["worker-death"].events
    faults = [
        event
        for event in killed
        if event[2] == "fault_injected"
        and event[3].get("fault") == "worker_killed"
    ]
    assert faults, [event[2] for event in killed]
    assert "pid" in faults[-1][3]
    # The rendered dump names the fault for the operator.
    assert "worker_killed" in recorder_mod.render_events(killed)
    # Disk drills carry their own black box: the torn-WAL outcome's
    # tail names both corruption injections.
    torn_faults = {
        event[3].get("fault")
        for event in outcomes["disk-torn-wal"].events
        if event[2] == "fault_injected"
    }
    assert {"torn_wal_truncate", "torn_wal_bitflip"} <= torn_faults
    recorder_mod.clear()
