"""ZShardRouter: the z-prefix shard arithmetic."""

from __future__ import annotations

import random

import pytest

from repro.encoding.interleave import interleave
from repro.parallel.router import ZShardRouter


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        for bad in (0, 3, 6, 12, -4):
            with pytest.raises(ValueError):
                ZShardRouter(dims=2, width=8, shards=bad)

    def test_rejects_too_many_shards_for_key_space(self):
        # 2 dims x 1 bit = a 4-point space: 8 shards cannot exist.
        with pytest.raises(ValueError):
            ZShardRouter(dims=2, width=1, shards=8)

    def test_single_shard_owns_everything(self):
        router = ZShardRouter(dims=3, width=8, shards=1)
        assert router.bits == 0
        assert router.shard_of((0, 0, 0)) == 0
        assert router.shard_of((255, 255, 255)) == 0
        assert router.bounds(0) == ((0, 0, 0), (255, 255, 255))


class TestShardKey:
    @pytest.mark.parametrize(
        "dims,width,shards",
        [(1, 8, 4), (2, 8, 4), (3, 20, 8), (6, 16, 16), (14, 12, 8)],
    )
    def test_shard_is_top_bits_of_morton_code(self, dims, width, shards):
        router = ZShardRouter(dims, width, shards)
        rng = random.Random(dims * 1000 + shards)
        for _ in range(300):
            key = tuple(rng.randrange(1 << width) for _ in range(dims))
            code = interleave(key, width)
            expected = code >> (dims * width - router.bits)
            assert router.shard_of(key) == expected

    def test_shard_index_order_is_z_order(self):
        """Keys sorted by Morton code have non-decreasing shard index --
        the property that makes per-shard concatenation z-ordered."""
        router = ZShardRouter(dims=2, width=8, shards=8)
        rng = random.Random(7)
        keys = sorted(
            (tuple(rng.randrange(256) for _ in range(2)) for _ in range(500)),
            key=lambda k: interleave(k, 8),
        )
        shards = [router.shard_of(k) for k in keys]
        assert shards == sorted(shards)


class TestGeometry:
    @pytest.mark.parametrize(
        "dims,width,shards", [(2, 8, 4), (3, 10, 8), (5, 6, 16)]
    )
    def test_regions_tile_the_space(self, dims, width, shards):
        """Every key lies in exactly one shard's box -- the box of the
        shard the key routes to."""
        router = ZShardRouter(dims, width, shards)
        rng = random.Random(42)
        for _ in range(200):
            key = tuple(rng.randrange(1 << width) for _ in range(dims))
            owners = [
                s
                for s in range(shards)
                if all(
                    lo <= v <= hi
                    for v, lo, hi in zip(key, *router.bounds(s))
                )
            ]
            assert owners == [router.shard_of(key)]

    def test_shards_for_box_matches_brute_force(self):
        router = ZShardRouter(dims=3, width=8, shards=8)
        rng = random.Random(3)
        for _ in range(100):
            lo = tuple(rng.randrange(256) for _ in range(3))
            hi = tuple(min(v + rng.randrange(128), 255) for v in lo)
            expected = [
                s
                for s in range(8)
                if all(
                    h >= slo and l <= shi
                    for l, h, slo, shi in zip(lo, hi, *router.bounds(s))
                )
            ]
            assert router.shards_for_box(lo, hi) == expected

    def test_full_domain_box_hits_every_shard(self):
        router = ZShardRouter(dims=2, width=8, shards=16)
        assert router.shards_for_box((0, 0), (255, 255)) == list(range(16))


class TestSplitSorted:
    def test_runs_are_contiguous_and_complete(self):
        router = ZShardRouter(dims=2, width=8, shards=8)
        rng = random.Random(9)
        keys = {tuple(rng.randrange(256) for _ in range(2)) for _ in range(400)}
        items = sorted(
            ((k, None) for k in keys), key=lambda kv: interleave(kv[0], 8)
        )
        runs = list(router.split_sorted(items))
        # Ascending shard indices, no shard twice.
        indices = [s for s, _ in runs]
        assert indices == sorted(set(indices))
        # Every run's entries route to the run's shard; nothing is lost.
        recovered = []
        for shard, run in runs:
            for key, _ in run:
                assert router.shard_of(key) == shard
            recovered.extend(run)
        assert recovered == items
