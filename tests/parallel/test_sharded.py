"""ShardedPHTree vs a single PHTree: exact observational equivalence.

The acceptance bar for the parallel layer: every operation's result --
*order included* -- equals the unsharded tree's, across dimensionalities
and the paper's CUBE/CLUSTER distributions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.phtree import PHTree
from repro.datasets.cluster import generate_cluster
from repro.datasets.cube import generate_cube
from repro.parallel import ShardedPHTree

WIDTH = 16


def _int_keys(points, width=WIDTH):
    scale = 1 << width
    return [
        tuple(max(0, min(int(v * scale), scale - 1)) for v in p)
        for p in points
    ]


def _dataset(name, n, dims, seed):
    if name == "CUBE":
        return _int_keys(generate_cube(n, dims, seed=seed))
    return _int_keys(generate_cluster(n, dims, seed=seed))


def _boxes(rng, dims, n_boxes, extent_shift=1):
    top = (1 << WIDTH) - 1
    extent = 1 << (WIDTH - extent_shift)
    out = []
    for _ in range(n_boxes):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
        out.append((lo, tuple(min(v + extent, top) for v in lo)))
    return out


@pytest.mark.parametrize("dims", [2, 6, 14])
@pytest.mark.parametrize("dataset", ["CUBE", "CLUSTER"])
class TestOracleEquivalence:
    """One scenario per (dims, distribution): mutate both trees in
    lockstep, compare every read exactly."""

    def test_lockstep_oracle(self, dims, dataset):
        rng = random.Random(dims * 31 + len(dataset))
        keys = _dataset(dataset, 600, dims, seed=dims)
        oracle = PHTree(dims=dims, width=WIDTH)
        sharded = ShardedPHTree(dims=dims, width=WIDTH, shards=8)

        # -- put (with duplicates: same replacement semantics) ------------
        for i, key in enumerate(keys):
            assert sharded.put(key, i) == oracle.put(key, i)
        for key in keys[:40]:  # replacement returns the old value
            assert sharded.put(key, "x") == oracle.put(key, "x")
        assert len(sharded) == len(oracle)

        # -- get / contains -----------------------------------------------
        for key in keys[:100]:
            assert sharded.get(key) == oracle.get(key)
            assert (key in sharded) == (key in oracle)
        missing = tuple(0 for _ in range(dims))
        assert sharded.get(missing, "d") == oracle.get(missing, "d")
        batch = keys[:80] + [missing]
        assert sharded.get_many(batch) == oracle.get_many(batch)

        # -- window queries (entries AND order) ----------------------------
        for lo, hi in _boxes(rng, dims, 25):
            assert sharded.query(lo, hi) == list(oracle.query(lo, hi))
        boxes = _boxes(rng, dims, 12) + [
            (tuple(5 for _ in range(dims)), tuple(1 for _ in range(dims)))
        ]  # one empty box rides along
        assert sharded.query_many(boxes) == oracle.query_many(boxes)

        # -- kNN (exact tie order) ----------------------------------------
        for _ in range(15):
            q = tuple(rng.randrange(1 << WIDTH) for _ in range(dims))
            for n in (1, 5, 13):
                assert sharded.knn(q, n) == oracle.knn(q, n)

        # -- iteration (global z-order) ------------------------------------
        assert list(sharded.items()) == list(oracle.items())
        assert list(sharded.keys()) == list(oracle.keys())

        # -- delete ---------------------------------------------------------
        doomed = list(dict.fromkeys(keys))[::3]
        for key in doomed:
            assert sharded.remove(key) == oracle.remove(key)
        with pytest.raises(KeyError):
            sharded.remove(doomed[0])
        assert sharded.remove(doomed[0], "gone") == "gone"
        assert list(sharded.items()) == list(oracle.items())
        for lo, hi in _boxes(rng, dims, 10):
            assert sharded.query(lo, hi) == list(oracle.query(lo, hi))
        sharded.check_invariants()

    def test_bulk_build_equals_incremental(self, dims, dataset):
        keys = _dataset(dataset, 500, dims, seed=dims + 100)
        entries = [(k, i) for i, k in enumerate(keys)]
        built = ShardedPHTree.build(
            entries, dims=dims, width=WIDTH, shards=8
        )
        incremental = ShardedPHTree(dims=dims, width=WIDTH, shards=8)
        for key, value in entries:
            incremental.put(key, value)
        assert list(built.items()) == list(incremental.items())
        assert built.shard_sizes() == incremental.shard_sizes()
        built.check_invariants()


class TestShardTopology:
    def test_shard_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ShardedPHTree(dims=2, width=8, shards=6)

    def test_single_shard_degenerates_gracefully(self):
        tree = ShardedPHTree(dims=2, width=8, shards=1)
        oracle = PHTree(dims=2, width=8)
        rng = random.Random(0)
        for _ in range(100):
            k = (rng.randrange(256), rng.randrange(256))
            tree.put(k, None)
            oracle.put(k, None)
        assert list(tree.items()) == list(oracle.items())

    def test_keys_land_in_routed_shard(self):
        tree = ShardedPHTree(dims=3, width=8, shards=8)
        rng = random.Random(5)
        for _ in range(200):
            tree.put(tuple(rng.randrange(256) for _ in range(3)), None)
        tree.check_invariants()  # includes the routing invariant
        assert sum(tree.shard_sizes().values()) == len(tree)

    def test_generation_counter_tracks_writes(self):
        tree = ShardedPHTree(dims=2, width=8, shards=4)
        before = tree.generations
        tree.put((0, 0), None)  # shard 0
        tree.put((255, 255), None)  # shard 3
        after = tree.generations
        assert after[0] == before[0] + 1
        assert after[3] == before[3] + 1
        assert after[1] == before[1] and after[2] == before[2]

    def test_invalid_keys_raise_like_phtree(self):
        tree = ShardedPHTree(dims=2, width=8, shards=4)
        for bad in [(1,), (1, 2, 3), (-1, 0), (256, 0)]:
            with pytest.raises(ValueError):
                tree.put(bad, None)
            with pytest.raises(ValueError):
                tree.get(bad)


class TestUpdateKey:
    def test_within_and_across_shards(self):
        tree = ShardedPHTree(dims=2, width=8, shards=4)
        oracle = PHTree(dims=2, width=8)
        for k in [(0, 0), (3, 4), (250, 250)]:
            tree.put(k, str(k))
            oracle.put(k, str(k))
        # Across shards: (3, 4) is in shard 0, (200, 7) in shard 2.
        tree.update_key((3, 4), (200, 7))
        oracle.update_key((3, 4), (200, 7))
        # Within one shard.
        tree.update_key((0, 0), (1, 1))
        oracle.update_key((0, 0), (1, 1))
        assert list(tree.items()) == list(oracle.items())
        with pytest.raises(KeyError):
            tree.update_key((9, 9), (10, 10))
        with pytest.raises(ValueError):
            tree.update_key((1, 1), (250, 250))
        tree.check_invariants()


class TestBatchedReads:
    def test_put_all_and_clear(self):
        tree = ShardedPHTree(dims=2, width=8, shards=4)
        entries = [((i, 255 - i), i) for i in range(100)]
        tree.put_all(entries)
        assert len(tree) == 100
        assert tree.get((10, 245)) == 10
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_count_matches_query(self):
        rng = random.Random(11)
        keys = _dataset("CUBE", 300, 3, seed=1)
        tree = ShardedPHTree.build(
            [(k, None) for k in keys], dims=3, width=WIDTH, shards=8
        )
        for lo, hi in _boxes(rng, 3, 10):
            assert tree.count(lo, hi) == len(tree.query(lo, hi))
