"""Shard/pool telemetry: per-shard op counts, snapshot lifecycle
counters, and the discard-error log-and-continue regression."""

import logging
import random

import pytest

from repro import obs
from repro.obs import probes
from repro.parallel.sharded import ShardedPHTree

DIMS = 2
WIDTH = 12
DOMAIN = (1 << WIDTH) - 1


@pytest.fixture
def obs_enabled():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


def _keys(n=200, seed=71):
    rng = random.Random(seed)
    return list(
        {
            (rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH))
            for _ in range(n)
        }
    )


def _shard_op_counts():
    counts = {}
    family = probes.shard_ops
    for (shard, op), child in family.children():
        if child.value:
            counts[(int(shard), op)] = child.value
    return counts


class TestShardOpCounts:
    def test_writes_and_reads_count_per_shard(self, obs_enabled):
        tree = ShardedPHTree(dims=DIMS, width=WIDTH, shards=4)
        keys = _keys()
        for key in keys:
            tree.put(key, None)
        for key in keys[:40]:
            tree.get(key)
            tree.contains(key)
        tree.remove(keys[0])
        tree.get_many(keys[:40])
        tree.query((0, 0), (DOMAIN, DOMAIN))
        tree.query_many([((0, 0), (DOMAIN, DOMAIN))])
        tree.knn(keys[1], 3)
        counts = _shard_op_counts()
        puts = sum(v for (_, op), v in counts.items() if op == "put")
        assert puts == len(keys)
        assert sum(
            v for (_, op), v in counts.items() if op == "remove"
        ) == 1
        # Every shard saw the full-domain query.
        for shard in range(4):
            assert counts.get((shard, "query"), 0) >= 1
        assert any(op == "get_many" for (_, op) in counts)
        assert any(op == "knn" for (_, op) in counts)

    def test_lock_wait_histograms_observe(self, obs_enabled):
        tree = ShardedPHTree(dims=DIMS, width=WIDTH, shards=2)
        for key in _keys(50):
            tree.put(key, None)
        tree.query((0, 0), (DOMAIN, DOMAIN))
        assert probes.shard_lock_wait_write.count == 50
        assert probes.shard_lock_wait_read.count > 0

    def test_disabled_counts_nothing(self):
        obs.reset()
        tree = ShardedPHTree(dims=DIMS, width=WIDTH, shards=2)
        for key in _keys(30):
            tree.put(key, None)
        tree.query((0, 0), (DOMAIN, DOMAIN))
        assert _shard_op_counts() == {}


class TestSnapshotPoolTelemetry:
    def test_republish_stale_and_fanout_counters(self, obs_enabled):
        keys = _keys(150, seed=73)
        with ShardedPHTree.build(
            [(key, None) for key in keys],
            dims=DIMS,
            width=WIDTH,
            shards=4,
            workers=2,
        ) as tree:
            # First fan-out publishes every shard snapshot.
            results = tree.query((0, 0), (DOMAIN, DOMAIN))
            assert len(results) == len(keys)
            assert probes.snapshot_republish.value == 4
            assert probes.snapshot_stale_invalidations.value == 0
            assert probes.snapshot_bytes.value > 0
            assert probes.fanout_tasks.labels("query").value == 4
            assert probes.fanout_latency.labels("query").count == 1
            # A write moves one shard's generation: exactly one
            # snapshot is stale and gets republished on refresh.
            tree.put(keys[0], None)
            assert tree.refresh_snapshots() == 1
            assert probes.snapshot_republish.value == 5
            assert probes.snapshot_stale_invalidations.value == 1
            # kNN and query_many fan-outs count their tasks too.
            tree.knn(keys[0], 2)
            assert probes.fanout_tasks.labels("knn").value == 4
            tree.query_many([((0, 0), (DOMAIN, DOMAIN))])
            assert probes.fanout_tasks.labels("query_many").value == 4
            # With workers, per-shard op counts come from the parent
            # side of the fan-out.
            counts = _shard_op_counts()
            for shard in range(4):
                assert counts.get((shard, "query"), 0) >= 1
                assert counts.get((shard, "knn"), 0) >= 1


class TestArenaRepublishFastPath:
    def test_arena_shards_freeze_straight_from_slabs(
        self, obs_enabled, monkeypatch
    ):
        """With arena-backed shards, every snapshot (re)publication
        must take freeze()'s slab fast path (no per-node object
        materialisation) -- the probe counts one tick per publish."""
        monkeypatch.setenv("REPRO_PHTREE_LAYOUT", "arena")
        keys = _keys(120, seed=91)
        with ShardedPHTree(
            dims=DIMS, width=WIDTH, shards=4, workers=1
        ) as tree:
            for key in keys:
                tree.put(key, None)
            assert tree._shards[0].unsafe_tree.layout == "arena"
            assert probes.freeze_arena_fast.value == 0
            # First fan-out publishes all four shard snapshots.
            results = tree.query((0, 0), (DOMAIN, DOMAIN))
            assert len(results) == len(keys)
            assert probes.freeze_arena_fast.value == 4
            # One write dirties one shard; its republish is again a
            # slab walk.
            tree.put(keys[0], None)
            assert tree.refresh_snapshots() == 1
            assert probes.freeze_arena_fast.value == 5

    def test_object_shards_never_tick_the_fast_path(self, obs_enabled):
        keys = _keys(60, seed=92)
        with ShardedPHTree.build(
            [(key, None) for key in keys],
            dims=DIMS,
            width=WIDTH,
            shards=2,
            workers=1,
        ) as tree:
            if tree._shards[0].unsafe_tree.layout != "object":
                pytest.skip("suite running with arena as session layout")
            tree.query((0, 0), (DOMAIN, DOMAIN))
            assert probes.snapshot_republish.value == 2
            assert probes.freeze_arena_fast.value == 0


class TestDiscardErrors:
    def test_unlink_failure_logs_counts_and_continues(
        self, obs_enabled, caplog
    ):
        """Regression: a raced/failed segment unlink must not propagate
        out of snapshot maintenance -- it is logged, counted, and the
        refresh completes with the pool still serving queries."""
        keys = _keys(60, seed=83)
        with ShardedPHTree.build(
            [(key, None) for key in keys],
            dims=DIMS,
            width=WIDTH,
            shards=2,
            workers=1,
        ) as tree:
            tree.query((0, 0), (DOMAIN, DOMAIN))
            pool = tree._pool
            victims = list(pool._snapshots)
            originals = []
            for snapshot in victims:
                originals.append(snapshot.segment.unlink)
                snapshot.segment.unlink = lambda: (
                    _ for _ in ()
                ).throw(OSError("simulated unlink race"))
            for key in keys:
                tree.put(key, None)  # touch both shards
            with caplog.at_level(
                logging.WARNING, logger="repro.parallel.executor"
            ):
                republished = tree.refresh_snapshots()
            assert republished == 2
            assert probes.snapshot_discard_errors.value == 2
            warnings = [
                record
                for record in caplog.records
                if "failed to discard snapshot segment"
                in record.getMessage()
            ]
            assert len(warnings) == 2
            assert len(tree.query((0, 0), (DOMAIN, DOMAIN))) == len(keys)
            for snapshot, unlink in zip(victims, originals):
                snapshot.segment.unlink = unlink
                unlink()
