"""``update_key`` moves that cross shard boundaries, exercised under
concurrent readers and checked lockstep against an unsharded oracle."""

from __future__ import annotations

import random
import threading

import pytest

from repro import PHTree
from repro.check import validate_tree
from repro.parallel import ShardedPHTree

DIMS, WIDTH, SHARDS = 2, 16, 4
LIMIT = 1 << WIDTH


def _unique_keys(rng, n):
    seen = set()
    while len(seen) < n:
        seen.add(tuple(rng.randrange(LIMIT) for _ in range(DIMS)))
    return list(seen)


def test_update_key_crosses_shards_lockstep_oracle():
    rng = random.Random(2014)
    keys = _unique_keys(rng, 200)
    sharded = ShardedPHTree(dims=DIMS, width=WIDTH, shards=SHARDS)
    oracle = PHTree(dims=DIMS, width=WIDTH)
    for value, key in enumerate(keys):
        sharded.put(key, value)
        oracle.put(key, value)

    crossings = 0
    live = list(keys)
    for step in range(400):
        old_key = live[rng.randrange(len(live))]
        new_key = tuple(rng.randrange(LIMIT) for _ in range(DIMS))
        if sharded.contains(new_key):
            # Occupied target: both sides must refuse identically.
            with pytest.raises(ValueError):
                sharded.update_key(old_key, new_key)
            with pytest.raises(ValueError):
                oracle.update_key(old_key, new_key)
            continue
        if sharded._router.shard_of(old_key) != sharded._router.shard_of(
            new_key
        ):
            crossings += 1
        sharded.update_key(old_key, new_key)
        oracle.update_key(old_key, new_key)
        live[live.index(old_key)] = new_key
        if step % 100 == 0:
            assert list(sharded.items()) == list(oracle.items())
    # The point of the test: a healthy share of moves changed shards.
    assert crossings > 50
    assert list(sharded.items()) == list(oracle.items())
    validate_tree(sharded)
    sharded.close()


def test_update_key_cross_shard_under_concurrent_readers():
    rng = random.Random(77)
    keys = _unique_keys(rng, 300)
    sharded = ShardedPHTree(dims=DIMS, width=WIDTH, shards=SHARDS)
    oracle = PHTree(dims=DIMS, width=WIDTH)
    # Every key ever inserted or moved to, with its (immutable) value;
    # written by the mover thread *before* the key becomes visible, so
    # readers can always resolve what they see.  Keys are never reused.
    ever_values = {}
    for value, key in enumerate(keys):
        sharded.put(key, value)
        oracle.put(key, value)
        ever_values[key] = value

    stop = threading.Event()
    problems = []

    def reader():
        # Hammer reads across all shards while keys migrate between
        # them.  Per-shard locking means a full iteration is not one
        # atomic snapshot, but every observed entry must carry its one
        # true value, every shard-local slice must be duplicate-free,
        # and nothing may raise.
        local_rng = random.Random(threading.get_ident())
        domain_lo = (0,) * DIMS
        domain_hi = (LIMIT - 1,) * DIMS
        while not stop.is_set():
            try:
                snapshot = list(sharded.items())
                for key, value in snapshot:
                    if ever_values.get(key) != value:
                        problems.append(
                            f"entry {key} seen with value {value}, "
                            f"expected {ever_values.get(key)}"
                        )
                window = sharded.query(domain_lo, domain_hi)
                for key, value in window:
                    if ever_values.get(key) != value:
                        problems.append(f"window saw torn {key}")
                probe = snapshot[
                    local_rng.randrange(len(snapshot))
                ][0]
                found = sharded.get(probe, None)
                if found is not None and ever_values.get(probe) != found:
                    problems.append(f"get({probe}) returned {found}")
            except Exception as exc:  # pragma: no cover - fail loudly
                problems.append(f"reader raised {exc!r}")
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()

    crossings = 0
    live = list(keys)
    try:
        moves = 0
        while moves < 250:
            index = rng.randrange(len(live))
            old_key = live[index]
            new_key = tuple(rng.randrange(LIMIT) for _ in range(DIMS))
            if new_key in ever_values:
                continue  # never reuse a key: values stay unambiguous
            if sharded._router.shard_of(
                old_key
            ) != sharded._router.shard_of(new_key):
                crossings += 1
            ever_values[new_key] = ever_values[old_key]
            sharded.update_key(old_key, new_key)
            oracle.update_key(old_key, new_key)
            live[index] = new_key
            moves += 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)

    assert not problems, problems[:5]
    assert crossings > 30
    assert list(sharded.items()) == list(oracle.items())
    assert len(sharded) == len(keys)
    validate_tree(sharded)
    sharded.close()
