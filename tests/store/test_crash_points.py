"""The acceptance drill: 100+ seeded crash points, all recovered.

For each phase (WAL append, flush, compaction) the identical seeded
workload is first replayed under :func:`repro.store.io.measure` to
learn the phase's exact charged I/O volume, then re-run with a crash
armed at evenly spaced byte offsets spanning that volume.  Every
single crash point must recover -- on a plain reopen -- to a
validator-green store whose contents equal the scenario's oracle:

- ``wal`` kills land *inside* a group-committed append, so recovery
  must equal some exact prefix of the op stream (never a mangled
  record, never an invented one);
- ``flush`` / ``compact`` kills happen after every op was WAL-durable,
  so recovery must equal the *full* final state bit-for-bit.

The store is learned: recovered segments must come back with their
``PHL1`` trailer attached from the mmap and keep answering point and
window queries correctly (the acceptance clause closing PR 9's note).
"""

from __future__ import annotations

import os

import pytest

from repro.check.validate import validate_tree
from repro.core.serialize import U64ValueCodec
from repro.store import io as store_io
from repro.store.drill import (
    SCENARIOS,
    build_ops,
    expected_state,
    prefix_states,
    run_scenario,
)
from repro.store.engine import DurablePHTree

DIMS, WIDTH, ENTRIES, SEED = 2, 16, 96, 7
POINTS_PER_SCOPE = 34  # 3 x 34 = 102 crash points

OPS = build_ops(DIMS, WIDTH, ENTRIES, SEED)


def _open(path):
    return DurablePHTree.open(
        str(path),
        dims=DIMS,
        width=WIDTH,
        shards=4,
        value_codec=U64ValueCodec,
        learned=True,
    )


def _measure_volume(scenario, tmp_path):
    with store_io.measure() as totals:
        run_scenario(_open(tmp_path / "measure"), scenario, OPS)
    volume = totals.get(scenario, 0)
    assert volume > 0, f"scenario {scenario} charged no I/O"
    return volume


def _offsets(volume):
    step = max(1, volume // POINTS_PER_SCOPE)
    offs = list(range(0, volume, step))[:POINTS_PER_SCOPE]
    # Always include the very last byte of the phase.
    offs[-1] = volume - 1
    return offs


def _check_learned_segments(store):
    lo = (0,) * DIMS
    hi = ((1 << WIDTH) - 1,) * DIMS
    contents = dict(store.items())
    for seg in store.segments:
        if seg.frozen is None or not len(seg.frozen):
            continue
        assert seg.frozen.learned_index is not None, (
            "recovered learned segment lost its PHL1 trailer"
        )
        for key, value in list(seg.frozen.items())[:8]:
            assert seg.frozen.get(key) == value  # learned point read
        window = dict(seg.frozen.query(lo, hi))
        assert window == dict(seg.frozen.items())
    # The recovered store answers window queries like its contents.
    assert dict(store.query(lo, hi)) == contents


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_crash_points_recover_exactly(scenario, tmp_path):
    volume = _measure_volume(scenario, tmp_path)
    oracle = expected_state(DIMS, WIDTH, ENTRIES, SEED)
    prefixes = (
        prefix_states(DIMS, WIDTH, ENTRIES, SEED)
        if scenario == "wal"
        else None
    )
    failures = []
    for offset in _offsets(volume):
        db = tmp_path / f"crash-{offset}"
        store_io.arm(scenario, offset, action="raise")
        try:
            run_scenario(_open(db), scenario, OPS)
        except store_io.SimulatedCrash:
            pass
        fired = store_io.crashed()
        store_io.disarm()
        if not fired:
            # A crash absorbed by close()'s redundant final sync still
            # counts as fired; no latch at all is a harness bug.
            failures.append(f"offset {offset}: crash never fired")
            continue
        recovered = _open(db)
        try:
            validate_tree(recovered)
            contents = dict(recovered.items())
            if scenario == "wal":
                # A kill inside an append recovers an exact op prefix.
                if contents not in prefixes:
                    failures.append(
                        f"offset {offset}: not an op-stream prefix"
                    )
            elif contents != oracle:
                failures.append(
                    f"offset {offset}: contents != oracle "
                    f"({len(contents)} vs {len(oracle)} entries)"
                )
            _check_learned_segments(recovered)
        finally:
            recovered.close()
    assert not failures, failures


def test_crash_during_store_creation_recovers(tmp_path):
    """Dying inside the very first WAL/manifest creation leaves a
    directory that opens as an empty (or still-fresh) store."""
    for offset in range(4):
        db = tmp_path / f"create-{offset}"
        store_io.arm("create", offset, action="raise")
        try:
            _open(db)
        except store_io.SimulatedCrash:
            pass
        finally:
            store_io.disarm()
        store = _open(db)
        try:
            validate_tree(store)
            assert len(store) == 0
        finally:
            store.close()


def test_any_scope_matches_every_phase(tmp_path):
    """`arm("any", ...)` hits whichever phase spends the budget first;
    recovery still lands on a clean prefix."""
    prefixes = prefix_states(DIMS, WIDTH, ENTRIES, SEED)
    db = tmp_path / "db"
    store_io.arm("any", 900, action="raise")
    try:
        run_scenario(_open(db), "flush", OPS)
    except store_io.SimulatedCrash:
        pass
    finally:
        store_io.disarm()
    store = _open(db)
    try:
        validate_tree(store)
        assert dict(store.items()) in prefixes
    finally:
        store.close()
