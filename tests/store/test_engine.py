"""DurablePHTree lifecycle: open/mutate/flush/compact/recover."""

from __future__ import annotations

import os
import random

import pytest

from repro.check.validate import validate_tree
from repro.core.serialize import NoneValueCodec, U64ValueCodec
from repro.store import DurablePHTree, StoreError

DIMS, WIDTH = 2, 16


def _items(n=120, seed=5):
    rng = random.Random(seed)
    out = {}
    while len(out) < n:
        out[tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))] = (
            rng.randrange(1 << 32)
        )
    return out


def _open(path, **kw):
    kw.setdefault("dims", DIMS)
    kw.setdefault("width", WIDTH)
    kw.setdefault("shards", 4)
    kw.setdefault("value_codec", U64ValueCodec)
    return DurablePHTree.open(str(path), **kw)


def test_constructor_is_blocked():
    with pytest.raises(TypeError, match="DurablePHTree.open"):
        DurablePHTree()


def test_fresh_open_requires_dims(tmp_path):
    with pytest.raises(StoreError, match="pass dims="):
        DurablePHTree.open(str(tmp_path / "db"))


def test_fresh_open_requires_nameable_codec(tmp_path):
    class WeirdCodec:
        bits = 32

    with pytest.raises(StoreError, match="value_codec"):
        DurablePHTree.open(
            str(tmp_path / "db"), dims=2, value_codec=WeirdCodec
        )


def test_put_get_remove_roundtrip(tmp_path):
    with _open(tmp_path / "db") as store:
        assert store.put((1, 2), 10) is None
        assert store.put((1, 2), 11) == 10  # previous value back
        assert store.get((1, 2)) == 11
        assert (1, 2) in store
        assert len(store) == 1
        assert store.remove((1, 2)) == 11
        with pytest.raises(KeyError):
            store.remove((1, 2))
        assert store.remove((1, 2), default=-1) == -1
        assert len(store) == 0 and not store


def test_update_key_contract_matches_live_tree(tmp_path):
    with _open(tmp_path / "db") as store:
        store.put((1, 1), 7)
        store.put((2, 2), 8)
        # Target occupied: ValueError -- unless it is a self-move.
        with pytest.raises(ValueError):
            store.update_key((1, 1), (2, 2))
        store.update_key((1, 1), (1, 1))  # no-op
        # Missing source: KeyError.
        with pytest.raises(KeyError):
            store.update_key((3, 3), (4, 4))
        store.update_key((1, 1), (5, 5))
        assert store.get((5, 5)) == 7
        assert store.get((1, 1)) is None


def test_reopen_replays_wal(tmp_path):
    db = tmp_path / "db"
    items = _items(80)
    with _open(db) as store:
        store.put_all(list(items.items()))
        victim = next(iter(items))
        store.remove(victim)
        del items[victim]
    with _open(db) as store:
        info = store.recovery_info
        assert info["created"] == 0
        assert info["replayed"] == 81  # 80 puts + 1 delete
        assert dict(store.items()) == items
        validate_tree(store)


def test_flush_writes_segments_and_tombstones(tmp_path):
    db = tmp_path / "db"
    items = _items(100)
    with _open(db) as store:
        store.put_all(list(items.items()))
        for key in list(items)[:10]:
            store.remove(key)
            del items[key]
        assert store.pending_ops > 0
        written = store.flush()
        assert written >= 2  # >=1 data segment + 1 tombstone batch
        assert store.pending_ops == 0
        assert store.flush() == 0  # clean store: no-op
        tombs = [s for s in store.segments if s.record.tombstones]
        datas = [s for s in store.segments if s.record.file]
        assert len(tombs) == 1 and tombs[0].record.removals == 10
        assert sum(len(s.frozen) for s in datas) == len(items)
        assert dict(store.items()) == items
        validate_tree(store)
    with _open(db) as store:
        assert store.recovery_info["replayed"] == 0  # WAL rotated
        assert dict(store.items()) == items


def test_compact_merges_chain(tmp_path):
    db = tmp_path / "db"
    items = _items(120)
    keys = list(items)
    with _open(db) as store:
        store.put_all([(k, items[k]) for k in keys[:60]])
        store.flush()
        store.put_all([(k, items[k]) for k in keys[60:]])
        for key in keys[:15]:
            store.remove(key)
            del items[key]
        merged = store.compact()
        assert 1 <= merged <= store.n_shards
        assert all(s.record.file for s in store.segments)  # no tombs
        assert sum(
            s.record.entries for s in store.segments
        ) == len(items)
        assert dict(store.items()) == items
        validate_tree(store)
    with _open(db) as store:
        assert dict(store.items()) == items


def test_checkpoint_snapshots_live_shards(tmp_path):
    db = tmp_path / "db"
    items = _items(90)
    with _open(db) as store:
        store.put_all(list(items.items()))
        segs = store.checkpoint()
        assert 1 <= segs <= store.n_shards
        assert store.pending_ops == 0
        validate_tree(store)
    with _open(db) as store:
        assert store.recovery_info["replayed"] == 0
        assert dict(store.items()) == items


def test_orphan_files_are_garbage_collected(tmp_path):
    db = tmp_path / "db"
    items = _items(40)
    with _open(db) as store:
        store.put_all(list(items.items()))
        store.flush()
    # Debris of a crashed flush: files no manifest references.
    for orphan in ("seg-99999999.phs", "wal-99999999.log"):
        with open(os.path.join(str(db), orphan), "wb") as f:
            f.write(b"debris")
    with _open(db) as store:
        names = set(os.listdir(str(db)))
        assert "seg-99999999.phs" not in names
        assert "wal-99999999.log" not in names
        assert dict(store.items()) == items


def test_geometry_mismatch_is_rejected(tmp_path):
    db = tmp_path / "db"
    _open(db).close()
    with pytest.raises(StoreError, match="dims mismatch"):
        DurablePHTree.open(str(db), dims=5, value_codec=U64ValueCodec)
    with pytest.raises(StoreError, match="value codec mismatch"):
        DurablePHTree.open(str(db), value_codec=NoneValueCodec)


def test_codec_defaults_from_manifest(tmp_path):
    db = tmp_path / "db"
    with _open(db) as store:
        store.put((3, 4), 99)
    with DurablePHTree.open(str(db)) as store:  # codec inferred
        assert store.get((3, 4)) == 99


def test_queries_delegate_to_live_tree(tmp_path):
    with _open(tmp_path / "db") as store:
        items = _items(60)
        store.put_all(list(items.items()))
        lo = (0,) * DIMS
        hi = ((1 << WIDTH) - 1,) * DIMS
        assert dict(store.query(lo, hi)) == items
        assert store.count(lo, hi) == len(items)
        some = list(items)[:5]
        assert store.get_many(some) == [items[k] for k in some]
        assert store.contains_many(some) == [True] * 5
        assert set(store.keys()) == set(items)
        nearest = store.knn(next(iter(items)), 1)
        assert len(nearest) == 1


def test_clear_drops_everything_durably(tmp_path):
    db = tmp_path / "db"
    with _open(db) as store:
        store.put_all(list(_items(50).items()))
        store.flush()
        store.put((7, 7), 1)
        store.clear()
        assert len(store) == 0
        assert store.segments == []
    with _open(db) as store:
        assert len(store) == 0
        assert dict(store.items()) == {}


def test_closed_store_raises(tmp_path):
    store = _open(tmp_path / "db")
    store.close()
    assert store.closed
    store.close()  # idempotent
    with pytest.raises(StoreError, match="closed"):
        store.put((1, 1), 1)
    with pytest.raises(StoreError, match="closed"):
        store.stats()


def test_stats_shape(tmp_path):
    with _open(tmp_path / "db") as store:
        store.put_all(list(_items(30).items()))
        store.flush()
        stats = store.stats()
        assert stats["entries"] == 30
        assert stats["segments"] == len(store.segments)
        assert stats["wal_seq"] == 30
        assert stats["pending_puts"] == 0
        assert stats["segment_bytes"] > 0
        assert stats["recovery"]["created"] == 1
