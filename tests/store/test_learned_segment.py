"""PHL1 trailer persistence: learned models round-trip through
segment files and re-attach zero-copy from the mmap (closing PR 9's
"persist the trailer" note)."""

from __future__ import annotations

import mmap
import os
import random

import pytest

from repro.core.frozen import FrozenPHTree
from repro.core.serialize import U64ValueCodec
from repro.store.engine import DurablePHTree

DIMS, WIDTH = 2, 16


def _items(n=300, seed=17):
    rng = random.Random(seed)
    out = {}
    while len(out) < n:
        out[tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))] = (
            rng.randrange(1 << 40)
        )
    return out


@pytest.fixture
def learned_store(tmp_path):
    store = DurablePHTree.open(
        str(tmp_path / "db"),
        dims=DIMS,
        width=WIDTH,
        shards=4,
        value_codec=U64ValueCodec,
        learned=True,
    )
    yield store, _items()
    store.close()


def test_flushed_segments_carry_phl1(learned_store):
    store, items = learned_store
    store.put_all(list(items.items()))
    store.flush()
    data_segments = [s for s in store.segments if s.frozen is not None]
    assert data_segments
    for seg in data_segments:
        model = seg.frozen.learned_index
        assert model is not None
        assert model.n == len(seg.frozen)
        assert model.trailer_bytes > 0


def test_segment_file_reattaches_model_from_mmap(learned_store, tmp_path):
    store, items = learned_store
    store.put_all(list(items.items()))
    store.flush()
    seg = max(
        (s for s in store.segments if s.frozen is not None),
        key=lambda s: len(s.frozen),
    )
    seg_path = os.path.join(store.path, seg.record.file)
    expected = dict(seg.frozen.items())

    # Attach the raw on-disk bytes by hand: the trailer is part of the
    # file, not engine state.
    with open(seg_path, "rb") as f:
        mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        frozen = FrozenPHTree(mapped, U64ValueCodec, learned=True)
        model = frozen.learned_index
        assert model is not None
        assert dict(frozen.items()) == expected
        # Model-served point reads agree with the data.
        for key, value in list(expected.items())[:20]:
            assert frozen.get(key) == value
        assert frozen.get((0, 0), default=-1) in (-1, expected.get((0, 0)))
        # Window queries through the learned path agree with a scan.
        lo = (1 << (WIDTH - 2),) * DIMS
        hi = (3 << (WIDTH - 2),) * DIMS
        window = {
            k: v
            for k, v in expected.items()
            if all(lo[d] <= k[d] <= hi[d] for d in range(DIMS))
        }
        assert dict(frozen.query(lo, hi)) == window
        del frozen, model
    finally:
        mapped.close()

    # Attaching with learned=False ignores the trailer but reads the
    # same data -- the trailer never corrupts the stream.
    blob = open(seg_path, "rb").read()
    plain = FrozenPHTree(blob, U64ValueCodec, learned=False)
    assert plain.learned_index is None
    assert dict(plain.items()) == expected


def test_recovery_reattaches_models_after_reopen(learned_store, tmp_path):
    store, items = learned_store
    store.put_all(list(items.items()))
    store.flush()
    path = store.path
    store.close()

    reopened = DurablePHTree.open(path, value_codec=U64ValueCodec)
    try:
        assert reopened.learned
        data_segments = [
            s for s in reopened.segments if s.frozen is not None
        ]
        assert data_segments
        for seg in data_segments:
            assert seg.frozen.learned_index is not None
        assert dict(reopened.items()) == items
    finally:
        reopened.close()


def test_unlearned_store_writes_no_trailer(tmp_path):
    store = DurablePHTree.open(
        str(tmp_path / "plain"),
        dims=DIMS,
        width=WIDTH,
        shards=2,
        value_codec=U64ValueCodec,
        learned=False,
    )
    try:
        store.put_all(list(_items(100).items()))
        store.flush()
        for seg in store.segments:
            if seg.frozen is not None:
                assert seg.frozen.learned_index is None
    finally:
        store.close()
