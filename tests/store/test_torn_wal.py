"""Torn-WAL corpus: recovery replays the longest valid prefix.

One deterministic store is built with its first half flushed into
segments and its second half WAL-only.  The corpus then corrupts the
WAL every way a crash or silent disk error can -- truncation at every
frame boundary, truncation inside every frame (header and payload),
and bit-flips across the CRC-covered regions -- and requires each
recovery to be validator-green with contents equal to an exact op-
stream prefix at or past the flushed half.  Never a validator-red
store, never invented data.
"""

from __future__ import annotations

import os
import shutil
import struct

import pytest

from repro.check.validate import validate_tree
from repro.core.serialize import U64ValueCodec
from repro.store.drill import build_ops, prefix_states
from repro.store.engine import DurablePHTree
from repro.store.manifest import load_manifest

DIMS, WIDTH, ENTRIES, SEED = 2, 16, 64, 11
HALF = ENTRIES // 2

OPS = build_ops(DIMS, WIDTH, ENTRIES, SEED)
STATES = prefix_states(DIMS, WIDTH, ENTRIES, SEED)


@pytest.fixture(scope="module")
def base_store(tmp_path_factory):
    """The half-flushed store plus its live WAL's frame boundaries."""
    base = str(tmp_path_factory.mktemp("torn-base") / "db")
    store = DurablePHTree.open(
        base,
        dims=DIMS,
        width=WIDTH,
        shards=4,
        value_codec=U64ValueCodec,
        learned=True,
    )
    for i, (op, key, value) in enumerate(OPS):
        if op == "put":
            store.put(key, value)
        else:
            store.remove(key, None)
        if i == HALF - 1:
            store.flush()
    store.close()
    manifest = load_manifest(base)
    wal_path = os.path.join(base, manifest.wal)
    data = open(wal_path, "rb").read()
    # Frame boundaries: byte offset after each whole frame.
    boundaries = [0]
    pos = 0
    while pos + 8 <= len(data):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 8 + length
        boundaries.append(pos)
    assert boundaries[-1] == len(data), "base WAL must be clean"
    assert len(boundaries) == ENTRIES - HALF + 1
    return base, manifest.wal, data, boundaries


def _recover(base: str, wal_name: str, blob: bytes, tmp_path) -> dict:
    """Clone the base store, install the corrupted WAL, reopen."""
    work = str(tmp_path / "db")
    shutil.copytree(base, work)
    with open(os.path.join(work, wal_name), "wb") as f:
        f.write(blob)
    store = DurablePHTree.open(work, value_codec=U64ValueCodec)
    try:
        validate_tree(store)
        return dict(store.items())
    finally:
        store.close()


def test_truncation_at_every_frame_boundary(base_store, tmp_path):
    base, wal_name, data, boundaries = base_store
    for i, cut in enumerate(boundaries):
        contents = _recover(
            base, wal_name, data[:cut], tmp_path / f"b{i}"
        )
        # Exactly the flushed half plus i replayed WAL records.
        assert contents == STATES[HALF + i], f"boundary {i} (cut {cut})"


def test_truncation_inside_every_frame(base_store, tmp_path):
    base, wal_name, data, boundaries = base_store
    for i, start in enumerate(boundaries[:-1]):
        end = boundaries[i + 1]
        # Mid-header and mid-payload tears of frame i.
        for tag, cut in (("hdr", start + 3), ("pay", (start + end) // 2)):
            contents = _recover(
                base, wal_name, data[:cut], tmp_path / f"f{i}{tag}"
            )
            assert contents == STATES[HALF + i], (
                f"frame {i} torn at {cut} ({tag})"
            )


def test_bitflips_across_crc_covered_regions(base_store, tmp_path):
    base, wal_name, data, boundaries = base_store
    step = max(1, len(data) // 24)
    for n, pos in enumerate(range(0, len(data), step)):
        blob = bytearray(data)
        blob[pos] ^= 0x10
        contents = _recover(
            base, wal_name, bytes(blob), tmp_path / f"x{n}"
        )
        # The damaged record and everything after it are discarded;
        # whatever survives is an exact prefix past the flushed half.
        assert contents in STATES[HALF:], f"bit-flip at byte {pos}"


def test_garbage_wal_recovers_to_flushed_half(base_store, tmp_path):
    base, wal_name, data, _ = base_store
    noise = bytes((i * 131 + 7) % 256 for i in range(len(data)))
    contents = _recover(base, wal_name, noise, tmp_path / "noise")
    assert contents == STATES[HALF]
