"""WAL framing, the mutation-record codec, and torn-tail repair."""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.store.wal import (
    OP_DEL,
    OP_PUT,
    OP_UPD,
    RecordCodec,
    WriteAheadLog,
    frame,
    scan_frames,
)


def test_frame_roundtrip_single():
    payload = b"hello, wal"
    blob = frame(payload)
    length, crc = struct.unpack_from("<II", blob, 0)
    assert length == len(payload)
    assert crc == zlib.crc32(payload)
    payloads, end = scan_frames(blob)
    assert payloads == [payload]
    assert end == len(blob)


def test_frame_rejects_empty_and_oversized():
    with pytest.raises(ValueError):
        frame(b"")
    from repro.store import wal as wal_mod

    huge = bytearray(struct.pack("<II", wal_mod.MAX_PAYLOAD + 1, 0))
    payloads, end = scan_frames(bytes(huge) + b"\x00" * 16)
    assert payloads == [] and end == 0


def test_scan_stops_at_torn_header_and_torn_payload():
    a, b = frame(b"alpha"), frame(b"bravo")
    blob = a + b
    # Every truncation point keeps only the frames wholly before it.
    for cut in range(len(blob) + 1):
        payloads, end = scan_frames(blob[:cut])
        if cut < len(a):
            assert payloads == [] and end == 0
        elif cut < len(blob):
            assert payloads == [b"alpha"] and end == len(a)
        else:
            assert payloads == [b"alpha", b"bravo"]


def test_scan_stops_at_crc_mismatch():
    blob = bytearray(frame(b"alpha") + frame(b"bravo"))
    # Flip a payload bit of the second frame.
    blob[len(frame(b"alpha")) + 8] ^= 0x01
    payloads, end = scan_frames(bytes(blob))
    assert payloads == [b"alpha"]
    assert end == len(frame(b"alpha"))


def test_record_codec_roundtrip():
    codec = RecordCodec(dims=3, width=16, value_bits=64)
    put = codec.decode(codec.encode_put(7, (1, 2, 3), 0xDEADBEEF))
    assert (put.seq, put.op, put.key, put.value) == (
        7,
        OP_PUT,
        (1, 2, 3),
        0xDEADBEEF,
    )
    dele = codec.decode(codec.encode_del(8, (4, 5, 6)))
    assert (dele.seq, dele.op, dele.key) == (8, OP_DEL, (4, 5, 6))
    upd = codec.decode(codec.encode_update(9, (1, 2, 3), (9, 9, 9)))
    assert (upd.seq, upd.op, upd.key, upd.new_key) == (
        9,
        OP_UPD,
        (1, 2, 3),
        (9, 9, 9),
    )


def test_record_codec_rejects_trailing_bytes_and_unknown_op():
    codec = RecordCodec(dims=2, width=16, value_bits=0)
    good = codec.encode_del(1, (10, 20))
    with pytest.raises(ValueError):
        codec.decode(good + b"\x00")
    bad_op = bytearray(good)
    bad_op[8] = 99
    with pytest.raises(ValueError):
        codec.decode(bytes(bad_op))


def test_group_append_then_reopen(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog.create(path)
    wrote = wal.append([b"one", b"two", b"three"])
    assert wrote == wal.size
    wal.close()
    assert wal.closed
    reopened, payloads, torn = WriteAheadLog.open(path)
    assert payloads == [b"one", b"two", b"three"]
    assert torn == 0
    # Appending after recovery extends the clean prefix.
    reopened.append([b"four"])
    reopened.close()
    _, payloads, _ = WriteAheadLog.open(path)
    assert payloads == [b"one", b"two", b"three", b"four"]


def test_reopen_truncates_torn_tail(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog.create(path)
    wal.append([b"alpha", b"bravo"])
    wal.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 3)  # tear the last frame
    reopened, payloads, torn = WriteAheadLog.open(path)
    assert payloads == [b"alpha"]
    assert torn == len(frame(b"bravo")) - 3
    reopened.close()
    # The repair really truncated the file on disk.
    assert os.path.getsize(path) == len(frame(b"alpha"))


def test_open_missing_file_creates_empty(tmp_path):
    path = str(tmp_path / "absent.log")
    wal, payloads, torn = WriteAheadLog.open(path)
    assert payloads == [] and torn == 0
    assert os.path.exists(path)
    wal.close()


def test_append_on_closed_wal_raises(tmp_path):
    wal = WriteAheadLog.create(str(tmp_path / "wal.log"))
    wal.close()
    with pytest.raises(ValueError):
        wal.append([b"x"])
