"""The ``check`` verb: correctness harness from the command line."""

from __future__ import annotations

import random

import pytest

from repro.tool.cli import main


@pytest.fixture
def index_file(tmp_path):
    rng = random.Random(9)
    csv_path = tmp_path / "points.csv"
    rows = ["x,y"]
    for _ in range(120):
        rows.append(f"{rng.uniform(-5, 5):.6f},{rng.uniform(-5, 5):.6f}")
    csv_path.write_text("\n".join(rows) + "\n")
    out = tmp_path / "points.pht"
    assert (
        main(["build", str(csv_path), "-c", "x,y", "-o", str(out)]) == 0
    )
    return out


def test_check_requires_a_stage(capsys):
    rc = main(["check"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "nothing to do" in captured.err


def test_check_validate_index(index_file, capsys):
    rc = main(["check", "--validate", str(index_file)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "OK" in captured.out
    assert "PHTree" in captured.out


def test_check_validate_missing_file(tmp_path, capsys):
    rc = main(["check", "--validate", str(tmp_path / "absent.pht")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error" in captured.err


def test_check_fuzz_smoke(capsys):
    rc = main(
        [
            "check",
            "--fuzz",
            "--seed",
            "0",
            "--ops",
            "300",
            "--dims",
            "2,3",
            "--width",
            "12",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "dims=2" in captured.out
    assert "dims=3" in captured.out
    assert captured.out.count("OK") == 2


def test_check_fuzz_failure_prints_repro(capsys, monkeypatch):
    from repro.core.arena_tree import ArenaPHTree
    from repro.core.phtree import PHTree

    # Plant the lie in both storage engines (each defines its own
    # contains, so the layout in use always hits a patched method).
    for cls in (PHTree, ArenaPHTree):
        original = cls.__dict__["contains"]

        def lying_contains(self, key, _original=original):
            result = _original(self, key)
            if result and sum(key) % 5 == 0:
                return False
            return result

        monkeypatch.setattr(cls, "contains", lying_contains)
    rc = main(
        ["check", "--fuzz", "--ops", "1500", "--dims", "2", "--width", "8"]
    )
    captured = capsys.readouterr()
    assert rc == 1
    assert "FAILED" in captured.err
    # The shrunk repro is paste-able: imports, ops, replay call.
    assert "from repro.check.fuzz import" in captured.err
    assert "replay(" in captured.err


def test_check_faults(capsys):
    rc = main(["check", "--faults"])
    captured = capsys.readouterr()
    assert rc == 0
    for fault in (
        "publish-failure",
        "worker-death",
        "unlink-failure",
        "lock-timeout",
    ):
        assert f"PASS {fault}" in captured.out


def test_check_combined_stages(index_file, capsys):
    rc = main(
        [
            "check",
            "--validate",
            str(index_file),
            "--fuzz",
            "--ops",
            "150",
            "--dims",
            "2",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "validate:" in captured.out
    assert "fuzz:" in captured.out
