"""The ``store`` verb: the durable WAL+segment store from the CLI."""

from __future__ import annotations

import random

import pytest

from repro.tool.cli import main


@pytest.fixture
def csv_file(tmp_path):
    rng = random.Random(21)
    path = tmp_path / "points.csv"
    rows = ["x,y"]
    for _ in range(200):
        rows.append(
            f"{rng.uniform(-5, 5):.6f},{rng.uniform(-5, 5):.6f}"
        )
    path.write_text("\n".join(rows) + "\n")
    return path


def test_store_requires_an_action(tmp_path, capsys):
    rc = main(["store", str(tmp_path / "db")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "nothing to do" in captured.err


def test_store_ingest_needs_columns(tmp_path, csv_file, capsys):
    rc = main(
        ["store", str(tmp_path / "db"), "--ingest", str(csv_file)]
    )
    captured = capsys.readouterr()
    assert rc == 2
    assert "--columns" in captured.err


def test_store_stats_on_missing_dir_is_an_error(tmp_path, capsys):
    rc = main(["store", str(tmp_path / "db"), "--stats"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "no manifest" in captured.err


def test_store_ingest_query_compact_stats(tmp_path, csv_file, capsys):
    db = str(tmp_path / "db")
    rc = main(
        [
            "store",
            db,
            "--ingest",
            str(csv_file),
            "-c",
            "x,y",
            "--learned",
            "--stats",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "ingested 200 row(s)" in captured.out
    assert "created fresh" in captured.out
    assert "(learned segments)" in captured.out

    # Reopen the same directory: recovery, a window query, compaction.
    rc = main(
        [
            "store",
            db,
            "--compact",
            "--query",
            "-5,-5 : 5,5",
            "--limit",
            "5",
            "--stats",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "compacted chain" in captured.out
    assert "200 point(s) in box" in captured.err
    assert "entries:        200" in captured.out


def test_store_survives_reopen_with_wal_tail(tmp_path, csv_file, capsys):
    """Rows ingested but never flushed (simulated by a direct put) are
    replayed from the WAL on the next CLI invocation."""
    from repro.core.serialize import U64ValueCodec
    from repro.store import DurablePHTree

    db = str(tmp_path / "db")
    assert (
        main(
            ["store", db, "--ingest", str(csv_file), "-c", "x,y"]
        )
        == 0
    )
    capsys.readouterr()
    with DurablePHTree.open(db, value_codec=U64ValueCodec) as store:
        store.put((1, 2), 999)  # WAL-only tail

    rc = main(["store", db, "--stats"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "entries:        201" in captured.out
    assert "replayed 1 WAL record(s)" in captured.out
