"""End-to-end tests of the CSV indexing tool (repro.tool)."""

from __future__ import annotations

import random

import pytest

from repro.tool.cli import main
from repro.tool.storage import load_index


@pytest.fixture
def csv_file(tmp_path):
    rng = random.Random(5)
    path = tmp_path / "points.csv"
    rows = ["name,lon,lat,size"]
    for i in range(300):
        rows.append(
            f"p{i},{rng.uniform(-10, 10):.6f},"
            f"{rng.uniform(40, 50):.6f},{rng.randrange(100)}"
        )
    rows.append("dup,0.0,45.0,1")
    rows.append("dup2,0.0,45.0,2")  # duplicate position
    rows.append("bad,not-a-number,45.0,3")  # skipped with a warning
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture
def index_file(csv_file, tmp_path):
    out = tmp_path / "points.pht"
    rc = main(
        [
            "build",
            str(csv_file),
            "--columns",
            "lon,lat",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    return out


class TestBuild:
    def test_build_reports(self, csv_file, tmp_path, capsys):
        out = tmp_path / "idx.pht"
        rc = main(
            ["build", str(csv_file), "-c", "lon,lat", "-o", str(out)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "indexed 301 unique points" in captured.out
        assert "1 duplicate positions" in captured.out
        assert "skipping row" in captured.err
        assert out.exists()

    def test_build_missing_column(self, csv_file, tmp_path, capsys):
        rc = main(
            [
                "build",
                str(csv_file),
                "-c",
                "lon,altitude",
                "-o",
                str(tmp_path / "x.pht"),
            ]
        )
        assert rc == 2
        assert "altitude" in capsys.readouterr().err

    def test_index_round_trips(self, index_file):
        index = load_index(index_file)
        assert index.columns == ["lon", "lat"]
        assert len(index.tree) == 301
        assert index.n_duplicates == 1


class TestQuery:
    def test_box_query(self, index_file, capsys):
        rc = main(
            [
                "query",
                str(index_file),
                "--box",
                "-10,40 : 10,50",
                "--limit",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.splitlines()[0] == "lon,lat,row"
        assert "301 point(s) in box" in captured.err

    def test_corner_order_normalised(self, index_file, capsys):
        rc = main(
            ["query", str(index_file), "-b", "10,50 : -10,40", "-l", "5"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "301 point(s)" in captured.err
        assert "more" in captured.err  # limit 5 < 301

    def test_empty_box(self, index_file, capsys):
        rc = main(
            ["query", str(index_file), "-b", "100,100 : 101,101"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "0 point(s) in box" in captured.err

    def test_malformed_box(self, index_file, capsys):
        rc = main(["query", str(index_file), "-b", "1,2,3"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestShardedQuery:
    BOX = ["-b", "-10,40 : 10,50", "-l", "1000"]

    def _run(self, index_file, capsys, *extra):
        rc = main(["query", str(index_file), *self.BOX, *extra])
        captured = capsys.readouterr()
        assert rc == 0
        return captured.out

    def test_sharded_output_matches_serial(self, index_file, capsys):
        serial = self._run(index_file, capsys)
        sharded = self._run(index_file, capsys, "--shards", "4")
        assert sharded == serial

    def test_worker_fanout_matches_serial(self, index_file, capsys):
        serial = self._run(index_file, capsys)
        fanned = self._run(
            index_file, capsys, "--shards", "2", "--workers", "1"
        )
        assert fanned == serial

    def test_bad_shard_count(self, index_file, capsys):
        rc = main(
            ["query", str(index_file), *self.BOX, "--shards", "6"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestKnn:
    def test_nearest(self, index_file, capsys):
        rc = main(
            ["knn", str(index_file), "--point", "0.0,45.0", "-n", "3"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.splitlines()
        assert lines[0] == "lon,lat,row,distance"
        assert len(lines) == 4
        # The duplicate position (0, 45) exists -> distance 0 first.
        assert lines[1].split(",")[3] == "0"

    def test_wrong_dims(self, index_file, capsys):
        rc = main(["knn", str(index_file), "-p", "1.0", "-n", "1"])
        assert rc == 2


class TestStats:
    def test_report(self, index_file, capsys):
        rc = main(["stats", str(index_file)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "unique points:     301" in captured.out
        assert "nodes:" in captured.out
        assert "entry/node ratio" in captured.out


class TestExport:
    def test_export_to_stdout(self, index_file, capsys):
        rc = main(["export", str(index_file)])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.strip().splitlines()
        assert lines[0] == "lon,lat,row"
        assert len(lines) == 302  # header + 301 points
        assert "exported 301 point(s)" in captured.err

    def test_export_to_file_round_trips(
        self, index_file, tmp_path, capsys
    ):
        out_csv = tmp_path / "dump.csv"
        rc = main(["export", str(index_file), "--out", str(out_csv)])
        assert rc == 0
        capsys.readouterr()
        # Re-index the export: same unique point count.
        out_idx = tmp_path / "dump.pht"
        rc = main(
            ["build", str(out_csv), "-c", "lon,lat", "-o", str(out_idx)]
        )
        assert rc == 0
        assert "indexed 301 unique points" in capsys.readouterr().out


class TestErrors:
    def test_not_an_index(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.pht"
        bogus.write_bytes(b"garbage")
        rc = main(["stats", str(bogus)])
        assert rc == 2
        assert "not a PH-tree index" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        rc = main(["stats", str(tmp_path / "nope.pht")])
        assert rc == 2


class TestExplain:
    def test_query_explain_prints_trace(self, index_file, capsys):
        rc = main(
            [
                "query",
                str(index_file),
                "-b",
                "-10,40 : 10,50",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "window query trace" in captured.out
        assert "totals:" in captured.out
        assert "nodes_visited" in captured.out
        assert "301 point(s) in box" in captured.err

    def test_knn_explain_prints_trace(self, index_file, capsys):
        rc = main(
            [
                "knn",
                str(index_file),
                "-p",
                "0.0,45.0",
                "-n",
                "3",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "kNN trace" in captured.out
        assert "regions_expanded" in captured.out

    def test_explain_leaves_instrumentation_off(self, index_file, capsys):
        from repro import obs

        main(
            ["query", str(index_file), "-b", "0,44 : 1,46", "--explain"]
        )
        capsys.readouterr()
        assert not obs.is_enabled()


class TestMetrics:
    def test_prometheus_text(self, index_file, capsys):
        rc = main(["metrics", str(index_file)])
        captured = capsys.readouterr()
        assert rc == 0
        text = captured.out
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{op="get_many"}' in text
        assert "repro_kernel_nodes_visited_total" in text
        # The registry is left clean for the rest of the process.
        from repro import obs

        assert not obs.is_enabled()

    def test_json_format_parses(self, index_file, capsys):
        import json as json_mod

        rc = main(["metrics", str(index_file), "--format", "json"])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json_mod.loads(captured.out)
        assert payload["repro_ops_total"]["type"] == "counter"
        ops = {
            tuple(sorted(v["labels"].items())): v["value"]
            for v in payload["repro_ops_total"]["values"]
        }
        assert ops[(("op", "get_many"),)] >= 1

    def test_sharded_workload_moves_shard_counters(
        self, index_file, capsys
    ):
        rc = main(
            [
                "metrics",
                str(index_file),
                "--shards",
                "4",
                "--workers",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        text = captured.out
        assert 'repro_shard_ops_total{shard="0", op="query"}' in text
        assert "repro_snapshot_republish_total" in text
        assert "repro_snapshot_stale_invalidations_total" in text
        assert 'repro_fanout_tasks_total{op="query"}' in text


class TestVerbosity:
    def test_flag_before_subcommand(self, index_file, capsys):
        rc = main(["-v", "stats", str(index_file)])
        assert rc == 0
        capsys.readouterr()

    def test_flag_after_subcommand(self, index_file, capsys):
        rc = main(["stats", str(index_file), "-v"])
        assert rc == 0
        capsys.readouterr()

    def test_verbose_metrics_logs_workload(self, index_file, capsys):
        import io

        from repro.obs.log import configure_logging

        rc = main(["-v", "metrics", str(index_file)])
        captured = capsys.readouterr()
        configure_logging(0, stream=io.StringIO())
        assert rc == 0
        assert "driving single-tree workload" in captured.err


class TestHeatVerb:
    @pytest.fixture
    def cluster_index(self, tmp_path):
        from repro.datasets.cluster import generate_cluster

        csv_path = tmp_path / "cluster.csv"
        rows = ["x,y"]
        for point in generate_cluster(1500, 2, seed=0):
            rows.append(f"{point[0]!r},{point[1]!r}")
        csv_path.write_text("\n".join(rows) + "\n")
        out = tmp_path / "cluster.pht"
        assert main(
            ["build", str(csv_path), "-c", "x,y", "-o", str(out)]
        ) == 0
        return out

    def test_histogram_output(self, index_file, capsys):
        rc = main(["heat", str(index_file), "--top", "3"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "heat map: top" in captured.out
        assert "z=" in captured.out
        assert "probed" in captured.err
        from repro import obs

        assert not obs.is_enabled()

    def test_json_output_parses(self, index_file, capsys):
        import json as json_mod

        rc = main(["heat", str(index_file), "--json", "--top", "5"])
        captured = capsys.readouterr()
        assert rc == 0
        snapshot = json_mod.loads(captured.out)
        assert snapshot
        assert snapshot[0]["count"] >= 1

    def test_cluster_centers_are_hottest(self, cluster_index, capsys):
        """Acceptance: on the skewed CLUSTER workload (seed 0) the top
        region contains the cluster line."""
        import json as json_mod

        from repro.encoding.ieee import encode_point

        rc = main(
            ["heat", str(cluster_index), "--top", "5", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        top = json_mod.loads(captured.out)[0]
        centers = [encode_point((x / 10, 0.5)) for x in range(11)]
        hit = any(
            all(
                lo <= value <= hi
                for value, (lo, hi) in zip(center, top["ranges"])
            )
            for center in centers
        )
        assert hit, top["ranges"]

    def test_levels_flag(self, index_file, capsys):
        rc = main(["heat", str(index_file), "--levels", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "(2 bits/dim" in captured.out


class TestMetricsReset:
    def _json_run(self, index_file, capsys, *extra):
        import json as json_mod

        rc = main(
            ["metrics", str(index_file), "--format", "json", *extra]
        )
        captured = capsys.readouterr()
        assert rc == 0
        return json_mod.loads(captured.out)

    @staticmethod
    def _counters(payload):
        skip = ("latency", "wait", "depth", "duration")
        return {
            name: sorted(
                (tuple(sorted(v["labels"].items())), v["value"])
                for v in family["values"]
            )
            for name, family in payload.items()
            if family["type"] in ("counter", "gauge")
            and not any(part in name for part in skip)
        }

    def test_repeated_invocations_are_idempotent(
        self, index_file, capsys
    ):
        first = self._counters(self._json_run(index_file, capsys))
        second = self._counters(self._json_run(index_file, capsys))
        assert first == second

    def test_reset_flag_clears_all_telemetry(self, index_file, capsys):
        from repro import obs
        from repro.core import specialize
        from repro.obs import heat as heat_mod
        from repro.obs import recorder as recorder_mod

        self._json_run(index_file, capsys, "--reset")
        assert len(heat_mod.HEATMAP) == 0
        assert len(recorder_mod.get_recorder()) == 0
        assert specialize.PLAN_CACHE_WINDOW == [0, 0, 0]
        ops = obs.dump_json().get("repro_ops_total")
        assert all(v["value"] == 0 for v in ops["values"])

    def test_default_leaves_metrics_scrapable(self, index_file, capsys):
        from repro import obs

        self._json_run(index_file, capsys)
        ops = obs.dump_json()["repro_ops_total"]
        assert any(v["value"] > 0 for v in ops["values"])
        obs.reset_all()


class TestExplainWaterfall:
    def test_sharded_explain_prints_waterfall(self, index_file, capsys):
        rc = main(
            [
                "query",
                str(index_file),
                "-b",
                "-10,40 : 10,50",
                "--shards",
                "4",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "span waterfall" in captured.out
        assert "route" in captured.out
        assert "scan" in captured.out
        assert "301 point(s) in box" in captured.err

    def test_worker_explain_includes_remote_spans(
        self, index_file, capsys
    ):
        rc = main(
            [
                "query",
                str(index_file),
                "-b",
                "-10,40 : 10,50",
                "--shards",
                "2",
                "--workers",
                "1",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "span waterfall" in captured.out
        assert "fanout" in captured.out
        assert "attach" in captured.out

    def test_serial_explain_keeps_node_trace(self, index_file, capsys):
        rc = main(
            [
                "query",
                str(index_file),
                "-b",
                "-10,40 : 10,50",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "window query trace" in captured.out
        assert "span waterfall" not in captured.out
