"""Tests for the point-query workload generator (paper Section 4.3.2)."""

from __future__ import annotations

import pytest

from repro.workloads.point_queries import make_point_queries

BOUNDS = ((0.0, 0.0), (1.0, 1.0))


class TestMix:
    def test_counts(self):
        queries = make_point_queries([(0.5, 0.5)], 100, BOUNDS, seed=1)
        assert len(queries) == 100

    def test_fifty_fifty_mix(self):
        points = [(0.5, 0.5)]
        queries = make_point_queries(points, 2000, BOUNDS, seed=2)
        hits = sum(1 for q in queries if q == points[0])
        assert 0.4 < hits / len(queries) < 0.6

    def test_existing_fraction_extremes(self):
        points = [(0.25, 0.75), (0.75, 0.25)]
        all_hits = make_point_queries(
            points, 100, BOUNDS, existing_fraction=1.0, seed=3
        )
        assert all(q in points for q in all_hits)
        all_random = make_point_queries(
            points, 100, BOUNDS, existing_fraction=0.0, seed=3
        )
        assert sum(1 for q in all_random if q in points) <= 2

    def test_random_queries_respect_bounds(self):
        bounds = ((-125.0, 24.0), (-65.0, 50.0))
        queries = make_point_queries(
            [(-100.0, 30.0)], 500, bounds, seed=4
        )
        for x, y in queries:
            assert -125.0 <= x <= -65.0
            assert 24.0 <= y <= 50.0

    def test_deterministic(self):
        points = [(0.1, 0.9)]
        assert make_point_queries(points, 50, BOUNDS, seed=5) == (
            make_point_queries(points, 50, BOUNDS, seed=5)
        )


class TestValidation:
    def test_negative_count(self):
        with pytest.raises(ValueError):
            make_point_queries([(0.5, 0.5)], -1, BOUNDS)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            make_point_queries(
                [(0.5, 0.5)], 10, BOUNDS, existing_fraction=1.5
            )

    def test_empty_points_with_hits_requested(self):
        with pytest.raises(ValueError):
            make_point_queries([], 10, BOUNDS)
        # But pure-random generation works without data.
        queries = make_point_queries(
            [], 10, BOUNDS, existing_fraction=0.0
        )
        assert len(queries) == 10
