"""Tests for the range-query workload generators (paper Section 4.3.3)."""

from __future__ import annotations

import math

import pytest

from repro.workloads.range_queries import (
    data_bounds,
    make_cluster_boxes,
    make_volume_boxes,
)


class TestDataBounds:
    def test_min_max(self):
        points = [(1.0, 5.0), (-2.0, 7.0), (0.5, 6.0)]
        lower, upper = data_bounds(points)
        assert lower == (-2.0, 5.0)
        assert upper == (1.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            data_bounds([])


class TestVolumeBoxes:
    UNIT = ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))

    def test_volume_is_exact(self):
        boxes = make_volume_boxes(self.UNIT, 50, 0.001, seed=1)
        for lo, hi in boxes:
            volume = math.prod(h - l for l, h in zip(lo, hi))
            assert volume == pytest.approx(0.001, rel=1e-9)

    def test_boxes_inside_bounds(self):
        boxes = make_volume_boxes(self.UNIT, 50, 0.01, seed=2)
        for lo, hi in boxes:
            for d in range(3):
                assert 0.0 <= lo[d] <= hi[d] <= 1.0 + 1e-12

    def test_edges_vary(self):
        """All edges random except the adjusted one: edge lengths must
        differ between queries."""
        boxes = make_volume_boxes(self.UNIT, 30, 0.001, seed=3)
        first_edges = {round(hi[0] - lo[0], 9) for lo, hi in boxes}
        assert len(first_edges) > 20

    def test_non_unit_bounds(self):
        bounds = ((-125.0, 24.0), (-65.0, 50.0))
        total = 60.0 * 26.0
        boxes = make_volume_boxes(bounds, 20, 0.01, seed=4)
        for lo, hi in boxes:
            area = (hi[0] - lo[0]) * (hi[1] - lo[1])
            assert area == pytest.approx(0.01 * total, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_volume_boxes(self.UNIT, -1, 0.01)
        with pytest.raises(ValueError):
            make_volume_boxes(self.UNIT, 1, 0.0)
        with pytest.raises(ValueError):
            make_volume_boxes(self.UNIT, 1, 1.5)
        with pytest.raises(ValueError):
            make_volume_boxes(((0.0,), (0.0,)), 1, 0.1)

    def test_deterministic(self):
        assert make_volume_boxes(self.UNIT, 5, 0.01, seed=9) == (
            make_volume_boxes(self.UNIT, 5, 0.01, seed=9)
        )


class TestClusterBoxes:
    def test_paper_shape(self):
        boxes = make_cluster_boxes(4, 30, seed=1)
        for lo, hi in boxes:
            # Thin in x.
            assert hi[0] - lo[0] == pytest.approx(0.0001)
            assert 0.0 <= lo[0] <= 0.1
            # Full extent in all other dimensions.
            for d in range(1, 4):
                assert lo[d] == 0.0
                assert hi[d] == 1.0

    def test_positions_vary(self):
        boxes = make_cluster_boxes(2, 50, seed=2)
        starts = {round(lo[0], 6) for lo, _ in boxes}
        assert len(starts) > 40

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cluster_boxes(0, 5)
        with pytest.raises(ValueError):
            make_cluster_boxes(2, -1)
